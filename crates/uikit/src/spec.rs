//! Declarative UI-spec language — the stand-in for CENTER's interactive
//! builder ("an interactive builder for users who are not experienced
//! programmers", §1).
//!
//! A spec describes a widget subtree:
//!
//! ```text
//! # a query form
//! form query title="Literature Query" {
//!   label author_lbl text="Author:"
//!   textfield author text="" width=30
//!   menu op items=["substring", "exact", "like-one-of"] selected=0
//!   button submit title="Search"
//! }
//! ```
//!
//! Attribute values: `"strings"`, integers, floats (contain `.`), `true` /
//! `false`, `[` string lists `]` and `#rrggbb` colours. `#` starts a
//! comment outside of a value position.

use cosoft_wire::{AttrName, Value, WidgetKind};

use crate::tree::{WidgetId, WidgetTree};
use crate::UiError;

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
    Color(u8, u8, u8),
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Eq,
}

struct Lexer<'a> {
    src: &'a str,
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, chars: src.char_indices().peekable(), line: 1 }
    }

    fn err(&self, reason: impl Into<String>) -> UiError {
        UiError::SpecParse { line: self.line, reason: reason.into() }
    }

    fn next_token(&mut self) -> Result<Option<(Token, usize)>, UiError> {
        loop {
            match self.chars.peek().copied() {
                None => return Ok(None),
                Some((_, '\n')) => {
                    self.line += 1;
                    self.chars.next();
                }
                Some((_, c)) if c.is_whitespace() => {
                    self.chars.next();
                }
                Some((_, '#')) => {
                    // Comment or colour literal: colour if followed by 6 hex digits.
                    let (start, _) = self.chars.next().expect("peeked");
                    let rest = &self.src[start + 1..];
                    let hex: String = rest.chars().take(6).collect();
                    if hex.len() == 6 && hex.chars().all(|c| c.is_ascii_hexdigit()) {
                        for _ in 0..6 {
                            self.chars.next();
                        }
                        let r = u8::from_str_radix(&hex[0..2], 16).expect("hex");
                        let g = u8::from_str_radix(&hex[2..4], 16).expect("hex");
                        let b = u8::from_str_radix(&hex[4..6], 16).expect("hex");
                        return Ok(Some((Token::Color(r, g, b), self.line)));
                    }
                    // Comment until end of line.
                    while let Some((_, c)) = self.chars.peek().copied() {
                        if c == '\n' {
                            break;
                        }
                        self.chars.next();
                    }
                }
                Some((_, '{')) => {
                    self.chars.next();
                    return Ok(Some((Token::LBrace, self.line)));
                }
                Some((_, '}')) => {
                    self.chars.next();
                    return Ok(Some((Token::RBrace, self.line)));
                }
                Some((_, '[')) => {
                    self.chars.next();
                    return Ok(Some((Token::LBracket, self.line)));
                }
                Some((_, ']')) => {
                    self.chars.next();
                    return Ok(Some((Token::RBracket, self.line)));
                }
                Some((_, ',')) => {
                    self.chars.next();
                    return Ok(Some((Token::Comma, self.line)));
                }
                Some((_, '=')) => {
                    self.chars.next();
                    return Ok(Some((Token::Eq, self.line)));
                }
                Some((_, '"')) => {
                    self.chars.next();
                    let mut s = String::new();
                    loop {
                        match self.chars.next() {
                            None => return Err(self.err("unterminated string")),
                            Some((_, '"')) => break,
                            Some((_, '\\')) => match self.chars.next() {
                                Some((_, 'n')) => s.push('\n'),
                                Some((_, 't')) => s.push('\t'),
                                Some((_, c)) => s.push(c),
                                None => return Err(self.err("unterminated escape")),
                            },
                            Some((_, '\n')) => return Err(self.err("newline in string")),
                            Some((_, c)) => s.push(c),
                        }
                    }
                    return Ok(Some((Token::Str(s), self.line)));
                }
                Some((_, c)) if c == '-' || c.is_ascii_digit() => {
                    let mut s = String::new();
                    s.push(c);
                    self.chars.next();
                    let mut is_float = false;
                    while let Some((_, c)) = self.chars.peek().copied() {
                        if c.is_ascii_digit() {
                            s.push(c);
                            self.chars.next();
                        } else if c == '.' && !is_float {
                            is_float = true;
                            s.push(c);
                            self.chars.next();
                        } else {
                            break;
                        }
                    }
                    return if is_float {
                        s.parse::<f64>()
                            .map(|f| Some((Token::Float(f), self.line)))
                            .map_err(|_| self.err(format!("bad float literal {s:?}")))
                    } else {
                        s.parse::<i64>()
                            .map(|i| Some((Token::Int(i), self.line)))
                            .map_err(|_| self.err(format!("bad int literal {s:?}")))
                    };
                }
                Some((_, c)) if c.is_ascii_alphabetic() || c == '_' => {
                    let mut s = String::new();
                    while let Some((_, c)) = self.chars.peek().copied() {
                        if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                            s.push(c);
                            self.chars.next();
                        } else {
                            break;
                        }
                    }
                    let tok = match s.as_str() {
                        "true" => Token::Bool(true),
                        "false" => Token::Bool(false),
                        _ => Token::Ident(s),
                    };
                    return Ok(Some((tok, self.line)));
                }
                Some((_, c)) => return Err(self.err(format!("unexpected character {c:?}"))),
            }
        }
    }
}

fn tokenize(src: &str) -> Result<Vec<(Token, usize)>, UiError> {
    let mut lexer = Lexer::new(src);
    let mut out = Vec::new();
    while let Some(t) = lexer.next_token()? {
        out.push(t);
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
}

impl Parser {
    fn line(&self) -> usize {
        self.tokens.get(self.pos).or_else(|| self.tokens.last()).map(|t| t.1).unwrap_or(1)
    }

    fn err(&self, reason: impl Into<String>) -> UiError {
        UiError::SpecParse { line: self.line(), reason: reason.into() }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.0)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|t| t.0.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, UiError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected {what}, got {other:?}"))),
        }
    }

    fn parse_value(&mut self) -> Result<Value, UiError> {
        match self.next() {
            Some(Token::Str(s)) => Ok(Value::Text(s)),
            Some(Token::Int(i)) => Ok(Value::Int(i)),
            Some(Token::Float(f)) => Ok(Value::Float(f)),
            Some(Token::Bool(b)) => Ok(Value::Bool(b)),
            Some(Token::Color(r, g, b)) => Ok(Value::Color(r, g, b)),
            Some(Token::LBracket) => {
                let mut items = Vec::new();
                loop {
                    match self.peek() {
                        Some(Token::RBracket) => {
                            self.next();
                            break;
                        }
                        Some(Token::Str(_)) => {
                            if let Some(Token::Str(s)) = self.next() {
                                items.push(s);
                            }
                            if let Some(Token::Comma) = self.peek() {
                                self.next();
                            }
                        }
                        other => {
                            return Err(self.err(format!("expected string in list, got {other:?}")))
                        }
                    }
                }
                Ok(Value::TextList(items))
            }
            other => Err(self.err(format!("expected attribute value, got {other:?}"))),
        }
    }

    /// widget := kind name (attr '=' value)* ('{' widget* '}')?
    fn parse_widget(
        &mut self,
        tree: &mut WidgetTree,
        parent: Option<WidgetId>,
    ) -> Result<WidgetId, UiError> {
        let kind_name = self.expect_ident("widget kind")?;
        let kind = WidgetKind::from_str_lossy(&kind_name);
        let name = self.expect_ident("widget name")?;
        let id = match parent {
            Some(p) => tree.create(p, kind, &name)?,
            None => tree.create_root(kind, &name)?,
        };
        // Attributes.
        while let Some(Token::Ident(_)) = self.peek() {
            // Lookahead: attribute only if followed by '='.
            if self.tokens.get(self.pos + 1).map(|t| &t.0) != Some(&Token::Eq) {
                break;
            }
            let attr_name = self.expect_ident("attribute name")?;
            self.next(); // consume '='
            let value = self.parse_value()?;
            let attr = AttrName::from_str_lossy(&attr_name);
            tree.set_attr(id, attr, value).map_err(|e| self.err(e.to_string()))?;
        }
        // Children.
        if let Some(Token::LBrace) = self.peek() {
            self.next();
            loop {
                match self.peek() {
                    Some(Token::RBrace) => {
                        self.next();
                        break;
                    }
                    Some(Token::Ident(_)) => {
                        self.parse_widget(tree, Some(id))?;
                    }
                    other => {
                        return Err(self.err(format!("expected widget or '}}', got {other:?}")))
                    }
                }
            }
        }
        Ok(id)
    }
}

/// Builds a complete widget tree from a spec whose single top-level widget
/// becomes the root.
///
/// # Errors
///
/// [`UiError::SpecParse`] on syntax errors and on semantic errors
/// (unknown attributes, type mismatches, duplicate names) with the
/// offending line number.
pub fn build_tree(src: &str) -> Result<WidgetTree, UiError> {
    let mut tree = WidgetTree::new();
    let mut parser = Parser { tokens: tokenize(src)?, pos: 0 };
    parser.parse_widget(&mut tree, None)?;
    if parser.peek().is_some() {
        return Err(parser.err("trailing input after root widget"));
    }
    Ok(tree)
}

/// Builds a subtree from a spec under an existing parent widget.
///
/// # Errors
///
/// Same as [`build_tree`].
pub fn build_subtree(
    tree: &mut WidgetTree,
    parent: WidgetId,
    src: &str,
) -> Result<WidgetId, UiError> {
    let mut parser = Parser { tokens: tokenize(src)?, pos: 0 };
    let id = parser.parse_widget(tree, Some(parent))?;
    if parser.peek().is_some() {
        return Err(parser.err("trailing input after widget"));
    }
    Ok(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosoft_wire::ObjectPath;

    const QUERY_FORM: &str = r#"
# a query form
form query title="Literature Query" {
  label author_lbl text="Author:"
  textfield author text="" width=30
  menu op items=["substring", "exact", "like-one-of"] selected=0
  button submit title="Search"
  slider relevance value=0.5 min=0.0 max=1.0
  toggle private checked=true
}
"#;

    #[test]
    fn parses_full_form() {
        let tree = build_tree(QUERY_FORM).unwrap();
        assert_eq!(tree.len(), 7);
        let op = tree.resolve(&ObjectPath::parse("query.op").unwrap()).unwrap();
        assert_eq!(
            tree.attr(op, &AttrName::Items).unwrap(),
            &Value::TextList(vec!["substring".into(), "exact".into(), "like-one-of".into()])
        );
        assert_eq!(tree.attr(op, &AttrName::Selected).unwrap(), &Value::Int(0));
        let slider = tree.resolve(&ObjectPath::parse("query.relevance").unwrap()).unwrap();
        assert_eq!(tree.attr(slider, &AttrName::ValueNum).unwrap(), &Value::Float(0.5));
        let toggle = tree.resolve(&ObjectPath::parse("query.private").unwrap()).unwrap();
        assert_eq!(tree.attr(toggle, &AttrName::Checked).unwrap(), &Value::Bool(true));
    }

    #[test]
    fn color_literals_parse() {
        let tree = build_tree(r##"label l text="x" foreground=#ff0080"##).unwrap();
        let id = tree.resolve(&ObjectPath::parse("l").unwrap()).unwrap();
        assert_eq!(tree.attr(id, &AttrName::Foreground).unwrap(), &Value::Color(255, 0, 128));
    }

    #[test]
    fn comments_and_escapes() {
        let tree = build_tree("# heading\nlabel l text=\"a\\nb\" # trailing\n").unwrap();
        let id = tree.resolve(&ObjectPath::parse("l").unwrap()).unwrap();
        assert_eq!(tree.attr(id, &AttrName::Text).unwrap(), &Value::Text("a\nb".into()));
    }

    #[test]
    fn negative_and_float_literals() {
        let tree = build_tree(r#"slider s value=-0.5 min=-1.0 max=1.0"#).unwrap();
        let id = tree.resolve(&ObjectPath::parse("s").unwrap()).unwrap();
        assert_eq!(tree.attr(id, &AttrName::ValueNum).unwrap(), &Value::Float(-0.5));
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = build_tree("form f {\n  label l text=\n}").unwrap_err();
        match err {
            UiError::SpecParse { line, .. } => assert_eq!(line, 3),
            other => panic!("expected SpecParse, got {other:?}"),
        }
    }

    #[test]
    fn unterminated_string_rejected() {
        assert!(matches!(build_tree("label l text=\"oops"), Err(UiError::SpecParse { .. })));
    }

    #[test]
    fn type_errors_surface_as_parse_errors() {
        let err = build_tree(r#"textfield f text=42"#).unwrap_err();
        assert!(matches!(err, UiError::SpecParse { .. }));
        assert!(err.to_string().contains("expects text"));
    }

    #[test]
    fn trailing_input_rejected() {
        assert!(build_tree("label a text=\"x\" label b").is_err());
    }

    #[test]
    fn build_subtree_grafts_under_parent() {
        let mut tree = build_tree("form root").unwrap();
        let root = tree.root().unwrap();
        build_subtree(&mut tree, root, "panel extras { button go title=\"Go\" }").unwrap();
        assert!(tree.resolve(&ObjectPath::parse("root.extras.go").unwrap()).is_some());
    }

    #[test]
    fn custom_widget_kinds_accepted() {
        let tree = build_tree(r#"simview sim speed=2.0"#).unwrap();
        let id = tree.resolve(&ObjectPath::parse("sim").unwrap()).unwrap();
        assert_eq!(tree.attr(id, &AttrName::custom("speed")).unwrap(), &Value::Float(2.0));
    }

    #[test]
    fn empty_list_parses() {
        let tree = build_tree(r#"menu m items=[] selected=-1"#).unwrap();
        let id = tree.resolve(&ObjectPath::parse("m").unwrap()).unwrap();
        assert_eq!(tree.attr(id, &AttrName::Items).unwrap(), &Value::TextList(vec![]));
    }
}
