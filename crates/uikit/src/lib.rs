//! `cosoft-uikit` — a headless UI toolkit standing in for the CENTER/Motif
//! toolbox the paper extends.
//!
//! The coupling model of Zhao & Hoppe (ICDCS 1994) operates entirely on the
//! toolkit's *event-callback* and *attribute* layers; pixels are
//! irrelevant to it. This crate therefore provides:
//!
//! * a typed widget tree ([`WidgetTree`]) addressed by hierarchical
//!   pathnames, with per-kind attribute [`schema`]s that declare the
//!   *relevant* (couplable) attributes of §3.1,
//! * high-level callback events with separately undoable *syntactic
//!   feedback* ([`feedback`]) — the hook the paper's floor-control
//!   rollback needs,
//! * a callback registry and phased event delivery ([`Toolkit`]),
//! * a declarative UI-spec language ([`spec`]) standing in for CENTER's
//!   interactive builder, and
//! * a headless text renderer ([`render`]).
//!
//! # Example
//!
//! ```
//! use cosoft_uikit::{spec, Toolkit};
//! use cosoft_wire::{AttrName, EventKind, ObjectPath, UiEvent, Value};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tree = spec::build_tree(r#"
//!     form root title="Demo" {
//!       textfield name text=""
//!     }
//! "#)?;
//! let mut tk = Toolkit::from_tree(tree);
//! let path = ObjectPath::parse("root.name")?;
//! tk.deliver(&UiEvent::new(
//!     path.clone(),
//!     EventKind::TextCommitted,
//!     vec![Value::Text("Hoppe".into())],
//! ))?;
//! let id = tk.tree().resolve(&path).unwrap();
//! assert_eq!(tk.tree().attr(id, &AttrName::Text)?, &Value::Text("Hoppe".into()));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod error;
pub mod feedback;
pub mod render;
pub mod schema;
pub mod spec;
mod toolkit;
mod tree;

pub use error::UiError;
pub use feedback::FeedbackUndo;
pub use schema::{builtin_schema, AttrSpec, SchemaRegistry, WidgetSchema};
pub use toolkit::{Callback, Toolkit};
pub use tree::{Widget, WidgetId, WidgetTree};
