//! Property-based tests of the UI-spec parser: generated specs for random
//! widget trees parse back to the same structure and attribute values,
//! and the parser never panics on arbitrary input.

use proptest::prelude::*;

use cosoft_uikit::spec::build_tree;
use cosoft_uikit::WidgetTree;
use cosoft_wire::{AttrName, Value, WidgetKind};

#[derive(Debug, Clone)]
struct SpecWidget {
    kind: WidgetKind,
    name: String,
    attrs: Vec<(AttrName, Value)>,
    children: Vec<SpecWidget>,
}

fn arb_leaf() -> impl Strategy<Value = SpecWidget> {
    let kinds = prop_oneof![
        Just(WidgetKind::TextField),
        Just(WidgetKind::Label),
        Just(WidgetKind::Slider),
        Just(WidgetKind::ToggleButton),
        Just(WidgetKind::Menu),
        Just(WidgetKind::Button),
    ];
    (kinds, 0u32..10_000).prop_flat_map(|(kind, n)| {
        let attrs: BoxedStrategy<Vec<(AttrName, Value)>> = match kind {
            WidgetKind::TextField | WidgetKind::Label => "[a-zA-Z0-9 _:,\\.]{0,20}"
                .prop_map(|s| vec![(AttrName::Text, Value::Text(s))])
                .boxed(),
            WidgetKind::Slider => (0..1_000i64)
                .prop_map(|v| vec![(AttrName::ValueNum, Value::Float(v as f64 / 1_000.0))])
                .boxed(),
            WidgetKind::ToggleButton => {
                any::<bool>().prop_map(|b| vec![(AttrName::Checked, Value::Bool(b))]).boxed()
            }
            WidgetKind::Menu => (prop::collection::vec("[a-z]{1,6}", 0..4), -1i64..4)
                .prop_map(|(items, sel)| {
                    vec![
                        (AttrName::Items, Value::TextList(items)),
                        (AttrName::Selected, Value::Int(sel)),
                    ]
                })
                .boxed(),
            _ => "[a-zA-Z ]{0,12}".prop_map(|s| vec![(AttrName::Title, Value::Text(s))]).boxed(),
        };
        let kind2 = kind.clone();
        attrs.prop_map(move |attrs| SpecWidget {
            kind: kind2.clone(),
            name: format!("w{n}"),
            attrs,
            children: Vec::new(),
        })
    })
}

fn arb_widget() -> impl Strategy<Value = SpecWidget> {
    arb_leaf().prop_recursive(3, 20, 4, |inner| {
        (0u32..10_000, prop::collection::vec(inner, 0..4)).prop_map(|(n, mut children)| {
            let mut seen = std::collections::BTreeSet::new();
            children.retain(|c| seen.insert(c.name.clone()));
            SpecWidget {
                kind: WidgetKind::Panel,
                name: format!("p{n}"),
                attrs: Vec::new(),
                children,
            }
        })
    })
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn value_literal(v: &Value) -> String {
    match v {
        Value::Text(s) => format!("\"{}\"", escape(s)),
        Value::Int(i) => i.to_string(),
        Value::Float(x) => {
            // Ensure a '.' so the lexer reads a float.
            let s = format!("{x}");
            if s.contains('.') {
                s
            } else {
                format!("{s}.0")
            }
        }
        Value::Bool(b) => b.to_string(),
        Value::TextList(items) => {
            let inner: Vec<String> = items.iter().map(|s| format!("\"{}\"", escape(s))).collect();
            format!("[{}]", inner.join(", "))
        }
        other => panic!("generator produced unsupported value {other:?}"),
    }
}

fn emit(widget: &SpecWidget, out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(widget.kind.as_str());
    out.push(' ');
    out.push_str(&widget.name);
    for (attr, value) in &widget.attrs {
        out.push(' ');
        out.push_str(attr.as_str());
        out.push('=');
        out.push_str(&value_literal(value));
    }
    if !widget.children.is_empty() {
        out.push_str(" {\n");
        for c in &widget.children {
            emit(c, out, depth + 1);
        }
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push('}');
    }
    out.push('\n');
}

fn check(
    tree: &WidgetTree,
    id: cosoft_uikit::WidgetId,
    spec: &SpecWidget,
) -> Result<(), TestCaseError> {
    let w = tree.widget(id).expect("live widget");
    prop_assert_eq!(w.kind(), &spec.kind);
    prop_assert_eq!(w.name(), spec.name.as_str());
    for (attr, value) in &spec.attrs {
        prop_assert_eq!(w.attrs().get(attr), Some(value), "attr {} differs", attr);
    }
    prop_assert_eq!(w.children().len(), spec.children.len());
    for (child_id, child_spec) in w.children().iter().zip(&spec.children) {
        check(tree, *child_id, child_spec)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn generated_specs_round_trip(widget in arb_widget()) {
        let mut src = String::new();
        emit(&widget, &mut src, 0);
        let tree = build_tree(&src).unwrap_or_else(|e| panic!("spec failed: {e}\n{src}"));
        let root = tree.root().expect("root exists");
        check(&tree, root, &widget)?;
    }

    #[test]
    fn parser_never_panics_on_garbage(src in "\\PC{0,200}") {
        let _ = build_tree(&src);
    }

    #[test]
    fn parser_never_panics_on_speclike_garbage(
        tokens in prop::collection::vec(
            prop_oneof![
                Just("form".to_owned()), Just("{".to_owned()), Just("}".to_owned()),
                Just("=".to_owned()), Just("\"x".to_owned()), Just("[".to_owned()),
                Just("]".to_owned()), Just("-".to_owned()), Just("3.5".to_owned()),
                "[a-z]{1,5}".prop_map(|s| s),
            ],
            0..40,
        )
    ) {
        let _ = build_tree(&tokens.join(" "));
    }
}
