//! Property-based tests of the simulated network: exactly-once delivery
//! without faults, a monotone clock, FIFO per link under fixed latency,
//! and accurate statistics.

use proptest::prelude::*;

use cosoft_net::sim::{FaultPlan, Latency, NodeId, SimNet};
use cosoft_wire::{InstanceId, Message};

fn msg(tag: u64) -> Message {
    Message::Welcome { instance: InstanceId(tag) }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Without faults every sent message is delivered exactly once, in
    /// nondecreasing virtual time.
    #[test]
    fn exactly_once_and_monotone(
        seed in any::<u64>(),
        sends in prop::collection::vec((0u64..5, 0u64..5, 0u64..1_000), 1..50),
        latency in prop_oneof![
            Just(Latency::Zero),
            (0u64..10_000).prop_map(Latency::Fixed),
            (0u64..5_000, 5_000u64..10_000).prop_map(|(a, b)| Latency::Uniform(a, b)),
        ],
    ) {
        let mut net = SimNet::new(seed);
        net.set_latency(latency);
        for (i, (src, dst, _)) in sends.iter().enumerate() {
            net.send(NodeId(*src), NodeId(*dst), msg(i as u64));
        }
        let mut seen = vec![0u32; sends.len()];
        let mut last = 0;
        while let Some(d) = net.step() {
            prop_assert!(d.at_us >= last, "clock went backwards");
            last = d.at_us;
            match d.msg {
                Message::Welcome { instance } => seen[instance.0 as usize] += 1,
                other => prop_assert!(false, "unexpected message {other:?}"),
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "not exactly-once: {seen:?}");
        prop_assert_eq!(net.stats().messages_sent, sends.len() as u64);
        prop_assert_eq!(net.stats().messages_delivered, sends.len() as u64);
    }

    /// Fixed latency preserves global send order (FIFO).
    #[test]
    fn fixed_latency_is_fifo(
        seed in any::<u64>(),
        n in 1usize..40,
        latency_us in 0u64..10_000,
    ) {
        let mut net = SimNet::new(seed);
        net.set_latency(Latency::Fixed(latency_us));
        for i in 0..n {
            net.send(NodeId(1), NodeId(2), msg(i as u64));
        }
        let mut expected = 0u64;
        while let Some(d) = net.step() {
            match d.msg {
                Message::Welcome { instance } => {
                    prop_assert_eq!(instance.0, expected, "reordered under fixed latency");
                    expected += 1;
                }
                other => prop_assert!(false, "unexpected message {other:?}"),
            }
        }
        prop_assert_eq!(expected, n as u64);
    }

    /// With 100% drop probability nothing is delivered and the drop
    /// counter matches; with duplication every message arrives at least
    /// once and the totals add up.
    #[test]
    fn fault_accounting(seed in any::<u64>(), n in 1usize..30) {
        let mut net = SimNet::new(seed);
        net.set_faults(FaultPlan { drop_prob: 1.0, ..FaultPlan::default() });
        for i in 0..n {
            net.send(NodeId(1), NodeId(2), msg(i as u64));
        }
        prop_assert!(net.is_idle());
        prop_assert_eq!(net.stats().dropped, n as u64);

        let mut net = SimNet::new(seed);
        net.set_faults(FaultPlan { dup_prob: 1.0, ..FaultPlan::default() });
        for i in 0..n {
            net.send(NodeId(1), NodeId(2), msg(i as u64));
        }
        let mut count = 0u64;
        while net.step().is_some() {
            count += 1;
        }
        prop_assert_eq!(count, 2 * n as u64);
        prop_assert_eq!(net.stats().duplicated, n as u64);
    }

    /// Identical seeds replay identical delivery schedules; byte counts
    /// are identical too.
    #[test]
    fn seeded_determinism(
        seed in any::<u64>(),
        sends in prop::collection::vec((0u64..4, 0u64..4), 1..30),
    ) {
        let run = |seed: u64| {
            let mut net = SimNet::new(seed);
            net.set_latency(Latency::Uniform(10, 5_000));
            net.set_faults(FaultPlan { drop_prob: 0.2, dup_prob: 0.2, ..FaultPlan::default() });
            for (i, (src, dst)) in sends.iter().enumerate() {
                net.send(NodeId(*src), NodeId(*dst), msg(i as u64));
            }
            let mut trace = Vec::new();
            while let Some(d) = net.step() {
                trace.push((d.at_us, d.src, d.dst));
            }
            (trace, net.stats().bytes_sent)
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
