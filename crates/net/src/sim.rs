//! Deterministic discrete-event network simulation.
//!
//! All multi-instance experiments in the reproduction run on [`SimNet`]: a
//! single-threaded event queue with a virtual microsecond clock, seeded
//! randomness, configurable per-message latency and optional fault
//! injection (drop / duplicate). This replaces the paper's 1994 LAN with a
//! substrate whose timing is reproducible down to the microsecond.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use cosoft_wire::{codec, Message};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Identifier of a simulated network endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u64);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// Latency model applied to each transmitted message.
#[derive(Debug, Clone)]
pub enum Latency {
    /// Instant delivery (still ordered by send sequence).
    Zero,
    /// Fixed one-way latency in microseconds.
    Fixed(u64),
    /// Uniformly distributed latency in `[min_us, max_us]` (can reorder
    /// messages between different sends).
    Uniform(u64, u64),
}

impl Latency {
    fn sample(&self, rng: &mut StdRng) -> u64 {
        match self {
            Latency::Zero => 0,
            Latency::Fixed(us) => *us,
            Latency::Uniform(min, max) => {
                if min >= max {
                    *min
                } else {
                    rng.gen_range(*min..=*max)
                }
            }
        }
    }
}

/// A scheduled link outage: every message to or from `node` sent while
/// the virtual clock is inside `[from_us, to_us)` is silently dropped.
/// This models a silently dead connection (the failure mode a liveness
/// grace period exists for), as opposed to the memoryless loss of
/// [`FaultPlan::drop_prob`].
#[derive(Debug, Clone, PartialEq)]
pub struct DownWindow {
    /// The endpoint whose link is down.
    pub node: NodeId,
    /// Start of the outage (inclusive), virtual microseconds.
    pub from_us: u64,
    /// End of the outage (exclusive), virtual microseconds.
    pub to_us: u64,
}

impl DownWindow {
    /// Whether this window covers `node` at virtual time `at_us`.
    pub fn covers(&self, node: NodeId, at_us: u64) -> bool {
        self.node == node && self.from_us <= at_us && at_us < self.to_us
    }
}

/// Fault-injection plan.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub drop_prob: f64,
    /// Probability in `[0, 1]` that a message is delivered twice.
    pub dup_prob: f64,
    /// Scheduled per-node outages (disconnect/reconnect schedules).
    pub down: Vec<DownWindow>,
}

impl FaultPlan {
    /// Whether `node`'s link is scheduled down at virtual time `at_us`.
    pub fn is_down(&self, node: NodeId, at_us: u64) -> bool {
        self.down.iter().any(|w| w.covers(node, at_us))
    }
}

/// A message delivered by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// Virtual time of delivery in microseconds.
    pub at_us: u64,
    /// Sending endpoint.
    pub src: NodeId,
    /// Receiving endpoint.
    pub dst: NodeId,
    /// The message.
    pub msg: Message,
}

#[derive(Debug, Clone)]
struct Queued {
    at_us: u64,
    seq: u64,
    src: NodeId,
    dst: NodeId,
    msg: Message,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.at_us == other.at_us && self.seq == other.seq
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at_us, self.seq).cmp(&(other.at_us, other.seq))
    }
}

/// Aggregate traffic statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to [`SimNet::send`] (before fault injection).
    pub messages_sent: u64,
    /// Messages actually delivered (after drops/duplicates).
    pub messages_delivered: u64,
    /// Encoded payload bytes sent (body only, excluding framing).
    pub bytes_sent: u64,
    /// Messages dropped by fault injection.
    pub dropped: u64,
    /// Messages dropped because a scheduled [`DownWindow`] covered the
    /// sender or receiver (counted separately from `dropped`).
    pub link_down_dropped: u64,
    /// Extra deliveries produced by duplication.
    pub duplicated: u64,
    /// Per message-kind send counts.
    pub per_kind: HashMap<&'static str, u64>,
}

/// Deterministic discrete-event network with a virtual clock.
///
/// # Example
///
/// ```
/// use cosoft_net::sim::{Latency, NodeId, SimNet};
/// use cosoft_wire::Message;
///
/// let mut net = SimNet::new(42);
/// net.set_latency(Latency::Fixed(2_000)); // 2 ms one way
/// net.send(NodeId(1), NodeId(2), Message::QueryInstances);
/// let d = net.step().expect("one delivery pending");
/// assert_eq!(d.at_us, 2_000);
/// assert_eq!(d.dst, NodeId(2));
/// ```
#[derive(Debug)]
pub struct SimNet {
    now_us: u64,
    seq: u64,
    heap: BinaryHeap<Reverse<Queued>>,
    latency: Latency,
    faults: FaultPlan,
    rng: StdRng,
    stats: NetStats,
}

impl SimNet {
    /// Creates a simulator with zero latency, no faults, and the given
    /// random seed.
    pub fn new(seed: u64) -> Self {
        SimNet {
            now_us: 0,
            seq: 0,
            heap: BinaryHeap::new(),
            latency: Latency::Zero,
            faults: FaultPlan::default(),
            rng: StdRng::seed_from_u64(seed),
            stats: NetStats::default(),
        }
    }

    /// Sets the latency model for subsequent sends.
    pub fn set_latency(&mut self, latency: Latency) {
        self.latency = latency;
    }

    /// Sets the fault-injection plan for subsequent sends.
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    /// Current virtual time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Advances the virtual clock to `t` (no-op if `t` is in the past).
    /// Used by workload drivers to inject actions at scripted times.
    pub fn advance_to(&mut self, t_us: u64) {
        self.now_us = self.now_us.max(t_us);
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Resets traffic statistics (the clock keeps running).
    pub fn reset_stats(&mut self) {
        self.stats = NetStats::default();
    }

    /// Number of queued (undelivered) messages.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Whether no deliveries are pending.
    pub fn is_idle(&self) -> bool {
        self.heap.is_empty()
    }

    /// Sends `msg` from `src` to `dst` with sampled latency, applying the
    /// fault plan. Accounts encoded size in the statistics.
    pub fn send(&mut self, src: NodeId, dst: NodeId, msg: Message) {
        let body_len = codec::encode_message(&msg).len();
        self.send_encoded(src, dst, msg, body_len);
    }

    /// Like [`SimNet::send`] for a message that is already encoded
    /// elsewhere: `msg` is the decoded view used for delivery and
    /// per-kind accounting, `body_len` the encoded body length (e.g. a
    /// pre-encoded shared frame's payload), charged to `bytes_sent`
    /// without re-encoding here.
    pub fn send_encoded(&mut self, src: NodeId, dst: NodeId, msg: Message, body_len: usize) {
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += body_len as u64;
        *self.stats.per_kind.entry(msg.kind_name()).or_insert(0) += 1;

        if self.faults.is_down(src, self.now_us) || self.faults.is_down(dst, self.now_us) {
            self.stats.link_down_dropped += 1;
            return;
        }
        if self.faults.drop_prob > 0.0 && self.rng.gen_bool(self.faults.drop_prob.clamp(0.0, 1.0)) {
            self.stats.dropped += 1;
            return;
        }
        let latency = self.latency.sample(&mut self.rng);
        self.push(src, dst, msg.clone(), latency);
        if self.faults.dup_prob > 0.0 && self.rng.gen_bool(self.faults.dup_prob.clamp(0.0, 1.0)) {
            let latency = self.latency.sample(&mut self.rng);
            self.push(src, dst, msg, latency);
            self.stats.duplicated += 1;
        }
    }

    /// Schedules a message to arrive at `dst` after an explicit delay —
    /// used to model timers and processing delays (e.g. a semantic action
    /// that takes 50 ms completes by sending a self-addressed message).
    pub fn schedule(&mut self, dst: NodeId, delay_us: u64, msg: Message) {
        self.push(dst, dst, msg, delay_us);
    }

    /// Sends with an extra delay on top of the sampled latency — models a
    /// sender that holds the message (queueing, service time) before
    /// putting it on the wire. Counted in the statistics like
    /// [`SimNet::send`]; fault injection is not applied.
    pub fn send_after(&mut self, src: NodeId, dst: NodeId, extra_delay_us: u64, msg: Message) {
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += codec::encode_message(&msg).len() as u64;
        *self.stats.per_kind.entry(msg.kind_name()).or_insert(0) += 1;
        let latency = self.latency.sample(&mut self.rng);
        self.push(src, dst, msg, extra_delay_us + latency);
    }

    fn push(&mut self, src: NodeId, dst: NodeId, msg: Message, delay_us: u64) {
        let q = Queued { at_us: self.now_us + delay_us, seq: self.seq, src, dst, msg };
        self.seq += 1;
        self.heap.push(Reverse(q));
    }

    /// Delivers the next pending message, advancing the virtual clock to
    /// its delivery time. Returns `None` when idle.
    pub fn step(&mut self) -> Option<Delivery> {
        let Reverse(q) = self.heap.pop()?;
        self.now_us = self.now_us.max(q.at_us);
        self.stats.messages_delivered += 1;
        Some(Delivery { at_us: q.at_us, src: q.src, dst: q.dst, msg: q.msg })
    }

    /// Runs the simulation to quiescence, calling `handler` for every
    /// delivery; the handler sends follow-up messages through the `SimNet`
    /// it is handed.
    ///
    /// Returns the number of deliveries processed. Stops after
    /// `max_steps` deliveries as a runaway guard.
    pub fn run<F>(&mut self, max_steps: u64, mut handler: F) -> u64
    where
        F: FnMut(&mut SimNet, Delivery),
    {
        let mut steps = 0;
        while steps < max_steps {
            match self.step() {
                Some(d) => {
                    handler(self, d);
                    steps += 1;
                }
                None => break,
            }
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg() -> Message {
        Message::QueryInstances
    }

    #[test]
    fn fixed_latency_preserves_order() {
        let mut net = SimNet::new(1);
        net.set_latency(Latency::Fixed(100));
        net.send(NodeId(1), NodeId(2), Message::Deregister);
        net.send(NodeId(1), NodeId(2), msg());
        let d1 = net.step().unwrap();
        let d2 = net.step().unwrap();
        assert_eq!(d1.msg, Message::Deregister);
        assert_eq!(d2.msg, msg());
        assert_eq!(d1.at_us, 100);
        assert_eq!(net.now_us(), 100);
        assert!(net.is_idle());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut net = SimNet::new(7);
        net.set_latency(Latency::Uniform(10, 1000));
        for _ in 0..50 {
            net.send(NodeId(1), NodeId(2), msg());
        }
        let mut last = 0;
        while let Some(d) = net.step() {
            assert!(d.at_us >= last);
            last = d.at_us;
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed| {
            let mut net = SimNet::new(seed);
            net.set_latency(Latency::Uniform(0, 500));
            for i in 0..20 {
                net.send(NodeId(i % 3), NodeId((i + 1) % 3), msg());
            }
            let mut times = Vec::new();
            while let Some(d) = net.step() {
                times.push((d.at_us, d.src, d.dst));
            }
            times
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
    }

    #[test]
    fn schedule_acts_as_timer() {
        let mut net = SimNet::new(1);
        net.schedule(NodeId(5), 50_000, msg());
        let d = net.step().unwrap();
        assert_eq!(d.at_us, 50_000);
        assert_eq!(d.dst, NodeId(5));
        assert_eq!(d.src, NodeId(5));
    }

    #[test]
    fn drop_faults_drop_messages() {
        let mut net = SimNet::new(3);
        net.set_faults(FaultPlan { drop_prob: 1.0, ..FaultPlan::default() });
        net.send(NodeId(1), NodeId(2), msg());
        assert!(net.is_idle());
        assert_eq!(net.stats().dropped, 1);
        assert_eq!(net.stats().messages_sent, 1);
    }

    #[test]
    fn down_windows_drop_messages_in_both_directions() {
        let mut net = SimNet::new(3);
        net.set_faults(FaultPlan {
            down: vec![DownWindow { node: NodeId(2), from_us: 100, to_us: 200 }],
            ..FaultPlan::default()
        });
        net.send(NodeId(1), NodeId(2), msg()); // t=0: delivered
        net.advance_to(100);
        net.send(NodeId(1), NodeId(2), msg()); // to the down node: dropped
        net.send(NodeId(2), NodeId(1), msg()); // from the down node: dropped
        net.advance_to(200);
        net.send(NodeId(1), NodeId(2), msg()); // window over: delivered
        assert_eq!(net.pending(), 2);
        assert_eq!(net.stats().link_down_dropped, 2);
        assert_eq!(net.stats().dropped, 0);
        assert_eq!(net.stats().messages_sent, 4);
    }

    #[test]
    fn dup_faults_duplicate_messages() {
        let mut net = SimNet::new(3);
        net.set_faults(FaultPlan { dup_prob: 1.0, ..FaultPlan::default() });
        net.send(NodeId(1), NodeId(2), msg());
        assert_eq!(net.pending(), 2);
        assert_eq!(net.stats().duplicated, 1);
    }

    #[test]
    fn stats_track_bytes_and_kinds() {
        let mut net = SimNet::new(1);
        net.send(NodeId(1), NodeId(2), msg());
        net.send(NodeId(1), NodeId(2), Message::Deregister);
        net.send(NodeId(1), NodeId(2), Message::Deregister);
        assert_eq!(net.stats().messages_sent, 3);
        assert!(net.stats().bytes_sent >= 3);
        assert_eq!(net.stats().per_kind.get("deregister"), Some(&2));
        assert_eq!(net.stats().per_kind.get("query-instances"), Some(&1));
    }

    #[test]
    fn run_drives_handler_chains() {
        // A ping-pong chain: node 2 replies once to the initial message.
        let mut net = SimNet::new(1);
        net.set_latency(Latency::Fixed(10));
        net.send(NodeId(1), NodeId(2), msg());
        let mut pongs = 0;
        let steps = net.run(100, |net, d| {
            if d.dst == NodeId(2) {
                net.send(NodeId(2), NodeId(1), Message::Deregister);
            } else {
                pongs += 1;
            }
        });
        assert_eq!(steps, 2);
        assert_eq!(pongs, 1);
    }

    #[test]
    fn run_respects_step_cap() {
        // Two nodes bouncing forever; the cap must stop it.
        let mut net = SimNet::new(1);
        net.send(NodeId(1), NodeId(2), msg());
        let steps = net.run(25, |net, d| {
            net.send(d.dst, d.src, msg());
        });
        assert_eq!(steps, 25);
    }
}
