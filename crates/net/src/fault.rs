//! Deterministic fault injection for the TCP transport.
//!
//! A [`FaultInjector`] sits between the poll pool and the kernel: every
//! socket write and read of an instrumented [`crate::tcp::TcpHost`]
//! first consults the injector, which may truncate the write, shorten
//! the read, synthesize a `WouldBlock`, or synthesize a hard socket
//! error. Faults are either *scripted* — per-connection queues consumed
//! one decision per I/O operation, so a test can spell out "first write
//! is cut to 3 bytes, second write would-blocks, third passes" — or
//! *randomized* from a seeded [SplitMix64] stream, so a chaos soak is
//! fully reproducible from its seed.
//!
//! The injector deliberately only models faults the transport must
//! absorb *without* help from the peer: partial writes exercise the
//! outbox head accounting, short reads exercise incremental frame
//! reassembly, `WouldBlock` storms exercise the sweep backoff, and
//! injected errors exercise the single-teardown path. Torn frames and
//! garbage bytes are injected from the peer side instead (a raw
//! `TcpStream` writing evil bytes needs no hooks).
//!
//! The module is always compiled — keeping `cfg` out of the poll-thread
//! plumbing — but the public constructors and
//! [`crate::tcp::TcpHost::bind_with_faults`] only exist behind the
//! non-default `fault-injection` cargo feature, so a release build has
//! no way to instrument a host (the workspace audit asserts the feature
//! stays out of default feature sets).
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

// Without the feature there is no way to construct faults, so the
// scripting surface is (correctly) unreachable — not a code smell.
#![cfg_attr(not(feature = "fault-injection"), allow(dead_code))]

use std::collections::{HashMap, VecDeque};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::tcp::ConnId;

/// One scripted decision for a socket write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Let the write through untouched.
    Pass,
    /// Cut the vectored write down to at most this many bytes (clamped
    /// to at least 1), forcing the outbox to track partial progress.
    Truncate(usize),
    /// Pretend the socket buffer is full; the poll thread retries the
    /// same bytes on a later sweep.
    WouldBlock,
    /// Synthesize a hard socket error of this kind; the connection is
    /// torn down through the normal error path.
    Error(io::ErrorKind),
}

/// One scripted decision for a socket read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFault {
    /// Let the read through untouched.
    Pass,
    /// Read into a buffer of at most this many bytes (clamped to at
    /// least 1), forcing incremental frame reassembly.
    Short(usize),
    /// Pretend no bytes are ready; the poll thread backs off and
    /// re-probes on a later sweep.
    WouldBlock,
    /// Synthesize a hard socket error of this kind; the connection is
    /// torn down through the normal error path.
    Error(io::ErrorKind),
}

/// What the poll thread should do with one write, after consulting the
/// injector. `WouldBlock`/`Error` faults arrive as `Err` so the flush
/// path handles them exactly like kernel-originated errors.
#[derive(Debug)]
pub(crate) enum WriteDecision {
    /// Write everything gathered.
    Pass,
    /// Gather at most this many bytes (≥ 1) before writing.
    Truncate(usize),
    /// Skip the write and treat it as having failed with this error.
    Err(io::Error),
}

/// What the poll thread should do with one read.
#[derive(Debug)]
pub(crate) enum ReadDecision {
    /// Read into the full scratch buffer.
    Pass,
    /// Read into at most this many bytes (≥ 1) of scratch.
    Short(usize),
    /// Skip the read and treat it as having failed with this error.
    Err(io::Error),
}

/// Randomized-mode parameters: per-mille probabilities for each
/// recoverable fault class, rolled independently per I/O operation.
/// Hard errors are never rolled randomly — a chaos soak asserts traffic
/// completes *despite* faults, which injected teardowns would turn into
/// a different (and flaky) test.
#[derive(Debug, Clone, Copy)]
struct RandomMode {
    state: u64,
    truncate_per_mille: u16,
    wouldblock_per_mille: u16,
    short_per_mille: u16,
}

impl RandomMode {
    /// SplitMix64 step: a full-period 64-bit stream from any seed.
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Rolls one in-a-thousand chance; `per_mille` of 0 never hits.
    fn roll(&mut self, per_mille: u16) -> bool {
        per_mille > 0 && self.next() % 1000 < u64::from(per_mille)
    }
}

#[derive(Debug, Default)]
struct Scripts {
    writes: HashMap<ConnId, VecDeque<WriteFault>>,
    reads: HashMap<ConnId, VecDeque<ReadFault>>,
    random: Option<RandomMode>,
}

/// Deterministic fault source shared by every poll thread of one
/// instrumented host. See the module docs for the model.
#[derive(Debug, Default)]
pub struct FaultInjector {
    scripts: Mutex<Scripts>,
    injected: AtomicU64,
}

impl FaultInjector {
    /// An injector with no faults scheduled: everything passes until
    /// faults are scripted with [`FaultInjector::script_writes`] /
    /// [`FaultInjector::script_reads`].
    #[cfg(feature = "fault-injection")]
    pub fn scripted() -> FaultInjector {
        FaultInjector::default()
    }

    /// An injector rolling seeded random *recoverable* faults (truncated
    /// writes, `WouldBlock` storms, short reads) with the given
    /// per-mille probabilities per I/O operation. The same seed replays
    /// the same fault schedule. Scripted faults may be layered on top
    /// and take precedence for their connection.
    #[cfg(feature = "fault-injection")]
    pub fn random(
        seed: u64,
        truncate_per_mille: u16,
        wouldblock_per_mille: u16,
        short_per_mille: u16,
    ) -> FaultInjector {
        let injector = FaultInjector::default();
        injector.scripts.lock().random = Some(RandomMode {
            state: seed,
            truncate_per_mille,
            wouldblock_per_mille,
            short_per_mille,
        });
        injector
    }

    /// Appends scripted write faults for one connection, consumed
    /// oldest-first, one per write attempt. Connection ids are assigned
    /// sequentially from 1 in accept order, so a single-client test
    /// scripts `ConnId(1)`.
    #[cfg(feature = "fault-injection")]
    pub fn script_writes(&self, conn: ConnId, faults: impl IntoIterator<Item = WriteFault>) {
        self.scripts.lock().writes.entry(conn).or_default().extend(faults);
    }

    /// Appends scripted read faults for one connection; see
    /// [`FaultInjector::script_writes`].
    #[cfg(feature = "fault-injection")]
    pub fn script_reads(&self, conn: ConnId, faults: impl IntoIterator<Item = ReadFault>) {
        self.scripts.lock().reads.entry(conn).or_default().extend(faults);
    }

    /// Total faults injected so far (every non-`Pass` decision).
    pub fn faults_injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Scripted write faults not yet consumed, across all connections.
    /// A test asserting "the schedule ran to completion" checks this
    /// reaches 0.
    pub fn pending_write_faults(&self) -> usize {
        self.scripts.lock().writes.values().map(VecDeque::len).sum()
    }

    /// Scripted read faults not yet consumed, across all connections.
    pub fn pending_read_faults(&self) -> usize {
        self.scripts.lock().reads.values().map(VecDeque::len).sum()
    }

    /// Decision for the next write on `conn`. Scripted faults are
    /// consumed first; with none queued, random mode (if configured)
    /// rolls; otherwise the write passes.
    pub(crate) fn on_write(&self, conn: ConnId) -> WriteDecision {
        let mut scripts = self.scripts.lock();
        if let Some(fault) = scripts.writes.get_mut(&conn).and_then(VecDeque::pop_front) {
            return self.decide_write(fault);
        }
        if let Some(random) = scripts.random.as_mut() {
            if random.roll(random.truncate_per_mille) {
                // 1..=4096 bytes: small enough to split frames, never 0.
                let n = (random.next() % 4096 + 1) as usize;
                drop(scripts);
                return self.decide_write(WriteFault::Truncate(n));
            }
            if random.roll(random.wouldblock_per_mille) {
                drop(scripts);
                return self.decide_write(WriteFault::WouldBlock);
            }
        }
        WriteDecision::Pass
    }

    /// Decision for the next read on `conn`; mirrors
    /// [`FaultInjector::on_write`].
    pub(crate) fn on_read(&self, conn: ConnId) -> ReadDecision {
        let mut scripts = self.scripts.lock();
        if let Some(fault) = scripts.reads.get_mut(&conn).and_then(VecDeque::pop_front) {
            return self.decide_read(fault);
        }
        if let Some(random) = scripts.random.as_mut() {
            if random.roll(random.short_per_mille) {
                let n = (random.next() % 64 + 1) as usize;
                drop(scripts);
                return self.decide_read(ReadFault::Short(n));
            }
        }
        ReadDecision::Pass
    }

    fn decide_write(&self, fault: WriteFault) -> WriteDecision {
        if fault != WriteFault::Pass {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        match fault {
            WriteFault::Pass => WriteDecision::Pass,
            WriteFault::Truncate(n) => WriteDecision::Truncate(n.max(1)),
            WriteFault::WouldBlock => {
                WriteDecision::Err(io::Error::new(io::ErrorKind::WouldBlock, "injected WouldBlock"))
            }
            WriteFault::Error(kind) => {
                WriteDecision::Err(io::Error::new(kind, "injected write error"))
            }
        }
    }

    fn decide_read(&self, fault: ReadFault) -> ReadDecision {
        if fault != ReadFault::Pass {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        match fault {
            ReadFault::Pass => ReadDecision::Pass,
            ReadFault::Short(n) => ReadDecision::Short(n.max(1)),
            ReadFault::WouldBlock => {
                ReadDecision::Err(io::Error::new(io::ErrorKind::WouldBlock, "injected WouldBlock"))
            }
            ReadFault::Error(kind) => {
                ReadDecision::Err(io::Error::new(kind, "injected read error"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector() -> FaultInjector {
        FaultInjector::default()
    }

    #[test]
    fn empty_injector_passes_everything() {
        let inj = injector();
        for _ in 0..100 {
            assert!(matches!(inj.on_write(ConnId(1)), WriteDecision::Pass));
            assert!(matches!(inj.on_read(ConnId(1)), ReadDecision::Pass));
        }
        assert_eq!(inj.faults_injected(), 0);
    }

    #[test]
    fn scripted_faults_consume_in_order_then_pass() {
        let inj = injector();
        inj.scripts.lock().writes.entry(ConnId(7)).or_default().extend([
            WriteFault::Truncate(3),
            WriteFault::WouldBlock,
            WriteFault::Pass,
            WriteFault::Error(io::ErrorKind::ConnectionReset),
        ]);
        assert!(matches!(inj.on_write(ConnId(7)), WriteDecision::Truncate(3)));
        match inj.on_write(ConnId(7)) {
            WriteDecision::Err(e) => assert_eq!(e.kind(), io::ErrorKind::WouldBlock),
            other => panic!("expected WouldBlock, got {other:?}"),
        }
        assert!(matches!(inj.on_write(ConnId(7)), WriteDecision::Pass));
        match inj.on_write(ConnId(7)) {
            WriteDecision::Err(e) => assert_eq!(e.kind(), io::ErrorKind::ConnectionReset),
            other => panic!("expected ConnectionReset, got {other:?}"),
        }
        // Script exhausted: back to passing.
        assert!(matches!(inj.on_write(ConnId(7)), WriteDecision::Pass));
        // The explicit Pass entry is not counted as a fault.
        assert_eq!(inj.faults_injected(), 3);
        assert_eq!(inj.pending_write_faults(), 0);
    }

    #[test]
    fn scripts_are_per_connection() {
        let inj = injector();
        inj.scripts.lock().reads.entry(ConnId(1)).or_default().push_back(ReadFault::Short(5));
        assert_eq!(inj.pending_read_faults(), 1);
        assert!(matches!(inj.on_read(ConnId(2)), ReadDecision::Pass));
        assert!(matches!(inj.on_read(ConnId(1)), ReadDecision::Short(5)));
        assert_eq!(inj.pending_read_faults(), 0);
    }

    #[test]
    fn read_stall_and_error_faults_map_to_io_errors() {
        let inj = injector();
        inj.scripts.lock().reads.entry(ConnId(4)).or_default().extend([
            ReadFault::WouldBlock,
            ReadFault::Pass,
            ReadFault::Error(io::ErrorKind::BrokenPipe),
        ]);
        match inj.on_read(ConnId(4)) {
            ReadDecision::Err(e) => assert_eq!(e.kind(), io::ErrorKind::WouldBlock),
            other => panic!("expected WouldBlock, got {other:?}"),
        }
        assert!(matches!(inj.on_read(ConnId(4)), ReadDecision::Pass));
        match inj.on_read(ConnId(4)) {
            ReadDecision::Err(e) => assert_eq!(e.kind(), io::ErrorKind::BrokenPipe),
            other => panic!("expected BrokenPipe, got {other:?}"),
        }
        assert_eq!(inj.faults_injected(), 2);
    }

    #[test]
    fn truncate_and_short_clamp_to_one_byte() {
        let inj = injector();
        inj.scripts.lock().writes.entry(ConnId(1)).or_default().push_back(WriteFault::Truncate(0));
        inj.scripts.lock().reads.entry(ConnId(1)).or_default().push_back(ReadFault::Short(0));
        assert!(matches!(inj.on_write(ConnId(1)), WriteDecision::Truncate(1)));
        assert!(matches!(inj.on_read(ConnId(1)), ReadDecision::Short(1)));
    }

    #[test]
    fn random_mode_is_deterministic_per_seed_and_never_errors() {
        let run = |seed: u64| {
            let inj = injector();
            inj.scripts.lock().random = Some(RandomMode {
                state: seed,
                truncate_per_mille: 200,
                wouldblock_per_mille: 200,
                short_per_mille: 200,
            });
            let mut trace = Vec::new();
            for i in 0..500u64 {
                let id = ConnId(i % 3 + 1);
                match inj.on_write(id) {
                    WriteDecision::Pass => trace.push(0usize),
                    WriteDecision::Truncate(n) => trace.push(n),
                    WriteDecision::Err(e) => {
                        assert_eq!(e.kind(), io::ErrorKind::WouldBlock);
                        trace.push(usize::MAX);
                    }
                }
                match inj.on_read(id) {
                    ReadDecision::Pass => trace.push(0),
                    ReadDecision::Short(n) => trace.push(n),
                    ReadDecision::Err(e) => panic!("random mode must not inject read errors: {e}"),
                }
            }
            (trace, inj.faults_injected())
        };
        let (trace_a, faults_a) = run(42);
        let (trace_b, faults_b) = run(42);
        assert_eq!(trace_a, trace_b, "same seed must replay the same schedule");
        assert_eq!(faults_a, faults_b);
        assert!(faults_a > 0, "per-mille 200 over 1000 ops should fault sometimes");
        let (trace_c, _) = run(43);
        assert_ne!(trace_a, trace_c, "different seeds should diverge");
    }

    #[test]
    fn zero_per_mille_random_mode_never_faults() {
        let inj = injector();
        inj.scripts.lock().random = Some(RandomMode {
            state: 9,
            truncate_per_mille: 0,
            wouldblock_per_mille: 0,
            short_per_mille: 0,
        });
        for _ in 0..200 {
            assert!(matches!(inj.on_write(ConnId(1)), WriteDecision::Pass));
            assert!(matches!(inj.on_read(ConnId(1)), ReadDecision::Pass));
        }
        assert_eq!(inj.faults_injected(), 0);
    }
}
