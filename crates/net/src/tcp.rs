//! Real TCP transport: length-prefixed COSOFT frames over `std::net`
//! sockets, delivered through crossbeam channels.
//!
//! The simulated network ([`crate::sim`]) carries all benchmarks; this
//! transport exists so the same server/client logic also runs over real
//! sockets (integration tests and the runnable examples use it).
//!
//! # Host I/O model
//!
//! The host is readiness-driven (see [`crate::poll`]): a fixed pool of
//! poll threads ([`TcpHostConfig::io_threads`]) owns every accepted
//! socket in nonblocking mode, so connection count adds *state*, not
//! threads. Each connection has a ring-buffer outbox flushed on
//! writability; [`TcpHost::send`] is a non-blocking enqueue plus a
//! wakeup of the owning poll thread, and one stalled consumer cannot
//! delay delivery to its peers. When a connection's backlog stays over
//! budget past [`TcpHostConfig::enqueue_timeout`] the connection is
//! declared a slow consumer and forcibly disconnected (surfacing the
//! usual [`NetEvent::Disconnected`], which the server maps to the §3.2
//! auto-decoupling path). Blocked enqueues park on a condvar signaled
//! as the poll thread drains bytes — there is no sleep-polling anywhere
//! on the path. [`TcpHost::send_batch`] coalesces all frames of one
//! server turn that target the same connection into a single queued
//! (vectored) write.

use std::collections::HashMap;
use std::io::{self, BufReader, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use cosoft_wire::{codec, Message, SharedFrame};
use crossbeam::channel::{
    bounded, unbounded, Receiver, RecvTimeoutError, SendTimeoutError, Sender, TrySendError,
};
use parking_lot::Mutex;

use crate::poll::{Cmd, ConnMap, ConnShared, Gate, OutBatch, Outbox, PollThread, PollWaker};

/// Identifier of one accepted connection on a [`TcpHost`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u64);

/// Event surfaced by a [`TcpHost`].
#[derive(Debug)]
pub enum NetEvent {
    /// A client connected.
    Connected(ConnId),
    /// A complete message arrived from a client.
    Message(ConnId, Message),
    /// A client disconnected (cleanly, on error, or evicted as a slow
    /// consumer).
    Disconnected(ConnId),
}

/// Sizing and slow-consumer policy for a [`TcpHost`]'s outbound queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHostConfig {
    /// Maximum writes queued per connection before an enqueue has to
    /// wait (each queued entry is one coalesced batch of frames).
    pub queue_capacity: usize,
    /// Maximum outbound backlog per connection in *bytes* before an
    /// enqueue has to wait. Byte accounting is what actually bounds
    /// memory: entry counts alone let one connection pin gigabytes of
    /// large frames. A single batch larger than the budget is still
    /// admitted into an empty backlog so it cannot wedge itself.
    pub queue_max_bytes: usize,
    /// How long an enqueue may wait on a full queue before the
    /// connection is declared a slow consumer and evicted.
    pub enqueue_timeout: Duration,
    /// Size of the poll-thread pool that owns every accepted socket.
    /// This is the host's *total* I/O thread count (plus one accept
    /// thread) regardless of connection count; connections are assigned
    /// round-robin at accept. Values below 1 are treated as 1.
    pub io_threads: usize,
    /// Most concurrently accepted connections; further dials are
    /// refused at accept (the socket is shut down before it ever
    /// reaches the poll pool, counted in
    /// [`TcpStats::connections_refused`]). `0` means unlimited.
    pub max_connections: usize,
    /// Accept-rate token bucket: at most this many accepts in a burst,
    /// refilled at [`TcpHostConfig::accept_refill_per_sec`]. A dial
    /// flood is refused at accept instead of fanning out into poll-pool
    /// state. `0` disables rate limiting.
    pub accept_burst: u32,
    /// Tokens per second returned to the accept bucket. Ignored (and
    /// irrelevant) while `accept_burst` is `0`.
    pub accept_refill_per_sec: u32,
    /// How long a freshly accepted connection may take to produce its
    /// first complete frame before it is torn down (counted in
    /// [`TcpStats::handshake_timeouts`]), so a dialer that connects and
    /// never speaks the protocol cannot hold a socket open forever.
    /// `Duration::ZERO` disables the deadline.
    pub handshake_timeout: Duration,
}

impl Default for TcpHostConfig {
    fn default() -> Self {
        TcpHostConfig {
            queue_capacity: 1024,
            queue_max_bytes: 8 * 1024 * 1024,
            enqueue_timeout: Duration::from_millis(200),
            io_threads: 1,
            max_connections: 0,
            accept_burst: 0,
            accept_refill_per_sec: 0,
            handshake_timeout: Duration::ZERO,
        }
    }
}

/// Snapshot of a [`TcpHost`]'s transport counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpStats {
    /// Frames written to sockets.
    pub frames_out: u64,
    /// Bytes written to sockets (including framing).
    pub bytes_out: u64,
    /// Frames decoded from sockets.
    pub frames_in: u64,
    /// Bytes read from sockets (including framing).
    pub bytes_in: u64,
    /// Socket writes that carried more than one queued batch.
    pub coalesced_writes: u64,
    /// Enqueues that found the connection's queue full and had to wait.
    pub enqueue_full_waits: u64,
    /// Connections forcibly disconnected by the slow-consumer policy.
    pub slow_consumer_evictions: u64,
    /// Frames dropped because their connection was already gone.
    pub frames_dropped: u64,
    /// Sweep passes that found their connection already torn down. A
    /// connection can be removed between the sweep-list snapshot and its
    /// own sweep; those are counted here and skipped, never treated as a
    /// poll-thread invariant violation.
    pub stale_sweeps: u64,
    /// Threads the host failed to spawn. The poll pool is spawned at
    /// bind (where failure is a bind error), so this stays 0 on the
    /// host today; the field is kept so stats consumers survive the
    /// thread-per-connection → poll-pool transition unchanged.
    pub thread_spawn_failures: u64,
    /// Socket-option calls (`set_nodelay`, `set_nonblocking`) that
    /// failed. Nodelay failures are tolerated (the connection is merely
    /// slower); nonblocking failures close the connection, since the
    /// poll loop cannot safely own a blocking socket. Either way the
    /// misbehaving platform is visible here instead of just slow.
    pub sockopt_failures: u64,
    /// Dials refused at accept by the admission policy
    /// ([`TcpHostConfig::max_connections`] or the accept-rate bucket).
    /// Refused sockets never surface a [`NetEvent::Connected`].
    pub connections_refused: u64,
    /// Connections torn down because no complete frame arrived within
    /// [`TcpHostConfig::handshake_timeout`].
    pub handshake_timeouts: u64,
    /// Currently accepted connections.
    pub active_connections: usize,
    /// Deepest per-connection outbound queue right now.
    pub max_queue_depth: usize,
    /// Largest per-connection outbound backlog right now, in bytes.
    pub max_queued_bytes: usize,
}

#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) frames_out: AtomicU64,
    pub(crate) bytes_out: AtomicU64,
    pub(crate) frames_in: AtomicU64,
    pub(crate) bytes_in: AtomicU64,
    pub(crate) coalesced_writes: AtomicU64,
    pub(crate) enqueue_full_waits: AtomicU64,
    pub(crate) slow_consumer_evictions: AtomicU64,
    pub(crate) frames_dropped: AtomicU64,
    pub(crate) stale_sweeps: AtomicU64,
    pub(crate) thread_spawn_failures: AtomicU64,
    pub(crate) sockopt_failures: AtomicU64,
    pub(crate) connections_refused: AtomicU64,
    pub(crate) handshake_timeouts: AtomicU64,
}

/// Cloneable handle that can snapshot a host's [`TcpStats`] even after
/// the host moved into a server thread.
#[derive(Clone)]
pub struct TcpStatsHandle {
    counters: Arc<Counters>,
    conns: ConnMap,
}

impl std::fmt::Debug for TcpStatsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpStatsHandle").finish_non_exhaustive()
    }
}

impl TcpStatsHandle {
    /// Current counter values.
    pub fn snapshot(&self) -> TcpStats {
        let (active, deepest, deepest_bytes) = {
            let conns = self.conns.lock();
            let deepest = conns.values().map(|c| c.outbox.lock().batches.len()).max().unwrap_or(0);
            let deepest_bytes =
                conns.values().map(|c| c.queued_bytes.load(Ordering::Relaxed)).max().unwrap_or(0);
            (conns.len(), deepest, deepest_bytes)
        };
        TcpStats {
            frames_out: self.counters.frames_out.load(Ordering::Relaxed),
            bytes_out: self.counters.bytes_out.load(Ordering::Relaxed),
            frames_in: self.counters.frames_in.load(Ordering::Relaxed),
            bytes_in: self.counters.bytes_in.load(Ordering::Relaxed),
            coalesced_writes: self.counters.coalesced_writes.load(Ordering::Relaxed),
            enqueue_full_waits: self.counters.enqueue_full_waits.load(Ordering::Relaxed),
            slow_consumer_evictions: self.counters.slow_consumer_evictions.load(Ordering::Relaxed),
            frames_dropped: self.counters.frames_dropped.load(Ordering::Relaxed),
            stale_sweeps: self.counters.stale_sweeps.load(Ordering::Relaxed),
            thread_spawn_failures: self.counters.thread_spawn_failures.load(Ordering::Relaxed),
            sockopt_failures: self.counters.sockopt_failures.load(Ordering::Relaxed),
            connections_refused: self.counters.connections_refused.load(Ordering::Relaxed),
            handshake_timeouts: self.counters.handshake_timeouts.load(Ordering::Relaxed),
            active_connections: active,
            max_queue_depth: deepest,
            max_queued_bytes: deepest_bytes,
        }
    }
}

/// One poll thread of the host's fixed I/O pool, as seen from the host
/// handle: a command channel, a wake token, and the join handle.
struct PollHandle {
    cmds: Sender<Cmd>,
    waker: Arc<PollWaker>,
    thread: Option<JoinHandle<()>>,
}

/// Accepting side of the TCP transport (used by the COSOFT server).
///
/// One accept thread hands sockets to a fixed pool of poll threads that
/// own all per-connection I/O; see the module docs for the model.
pub struct TcpHost {
    local_addr: SocketAddr,
    config: TcpHostConfig,
    events: Receiver<NetEvent>,
    conns: ConnMap,
    counters: Arc<Counters>,
    shutdown: Arc<AtomicBool>,
    pool: Vec<PollHandle>,
    accept_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for TcpHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpHost").field("local_addr", &self.local_addr).finish()
    }
}

impl TcpHost {
    /// Binds a listener (use port 0 for an ephemeral port) and starts the
    /// accept loop, with the default slow-consumer policy.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: &str) -> io::Result<TcpHost> {
        TcpHost::bind_with_config(addr, TcpHostConfig::default())
    }

    /// Binds with an explicit queue/slow-consumer/pool configuration.
    ///
    /// # Errors
    ///
    /// Propagates bind failures, including failure to spawn the accept
    /// thread or the poll pool.
    pub fn bind_with_config(addr: &str, config: TcpHostConfig) -> io::Result<TcpHost> {
        TcpHost::bind_inner(addr, config, None)
    }

    /// Binds a host whose every socket read and write first consults a
    /// [`crate::fault::FaultInjector`] — the entry point for the chaos
    /// tests. Only exists behind the non-default `fault-injection`
    /// feature; release builds have no way to instrument a host.
    ///
    /// # Errors
    ///
    /// Same as [`TcpHost::bind_with_config`].
    #[cfg(feature = "fault-injection")]
    pub fn bind_with_faults(
        addr: &str,
        config: TcpHostConfig,
        faults: Arc<crate::fault::FaultInjector>,
    ) -> io::Result<TcpHost> {
        TcpHost::bind_inner(addr, config, Some(faults))
    }

    fn bind_inner(
        addr: &str,
        config: TcpHostConfig,
        faults: Option<Arc<crate::fault::FaultInjector>>,
    ) -> io::Result<TcpHost> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let (tx, rx) = unbounded();
        let conns: ConnMap = Arc::new(Mutex::new(HashMap::new()));
        let counters = Arc::new(Counters::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let next_id = Arc::new(AtomicU64::new(1));

        // The fixed I/O pool, spawned up front: a pool-spawn failure is
        // a bind error, not a per-connection casualty.
        let pool_size = config.io_threads.max(1);
        let handshake_timeout =
            if config.handshake_timeout.is_zero() { None } else { Some(config.handshake_timeout) };
        let mut pool: Vec<PollHandle> = Vec::with_capacity(pool_size);
        for i in 0..pool_size {
            let (cmd_tx, cmd_rx) = unbounded();
            let waker = Arc::new(PollWaker::default());
            let thread_body = PollThread::new(
                cmd_rx,
                waker.clone(),
                tx.clone(),
                conns.clone(),
                counters.clone(),
                handshake_timeout,
                faults.clone(),
            );
            let spawned = std::thread::Builder::new()
                .name(format!("cosoft-poll-{i}"))
                .spawn(move || thread_body.run());
            match spawned {
                Ok(handle) => {
                    pool.push(PollHandle { cmds: cmd_tx, waker, thread: Some(handle) });
                }
                Err(e) => {
                    for h in &mut pool {
                        let _ = h.cmds.send(Cmd::Shutdown);
                        h.waker.wake();
                        if let Some(t) = h.thread.take() {
                            t.join().ok();
                        }
                    }
                    return Err(e);
                }
            }
        }

        let accept_conns = conns.clone();
        let accept_counters = counters.clone();
        let accept_shutdown = shutdown.clone();
        let accept_pool: Vec<(Sender<Cmd>, Arc<PollWaker>)> =
            pool.iter().map(|h| (h.cmds.clone(), h.waker.clone())).collect();
        let accept_thread =
            std::thread::Builder::new().name("cosoft-accept".into()).spawn(move || {
                // Accept-rate token bucket: starts full, refills
                // continuously. Fractional tokens carry across accepts
                // so the long-run rate is exactly `accept_refill_per_sec`.
                let mut allowance = f64::from(config.accept_burst);
                let mut last_refill = Instant::now();
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Admission control runs before the socket reaches
                    // the poll pool: a refused dial costs one accept and
                    // one shutdown, never poll-pool state or events.
                    if config.max_connections > 0
                        && accept_conns.lock().len() >= config.max_connections
                    {
                        accept_counters.connections_refused.fetch_add(1, Ordering::Relaxed);
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                        continue;
                    }
                    if config.accept_burst > 0 {
                        let now = Instant::now();
                        let refill = now.duration_since(last_refill).as_secs_f64()
                            * f64::from(config.accept_refill_per_sec);
                        allowance = (allowance + refill).min(f64::from(config.accept_burst));
                        last_refill = now;
                        if allowance < 1.0 {
                            accept_counters.connections_refused.fetch_add(1, Ordering::Relaxed);
                            let _ = stream.shutdown(std::net::Shutdown::Both);
                            continue;
                        }
                        allowance -= 1.0;
                    }
                    let id = ConnId(next_id.fetch_add(1, Ordering::SeqCst));
                    if stream.set_nodelay(true).is_err() {
                        // Tolerated: the connection works, just slower.
                        accept_counters.sockopt_failures.fetch_add(1, Ordering::Relaxed);
                    }
                    if stream.set_nonblocking(true).is_err() {
                        // Not tolerated: the poll loop cannot own a
                        // blocking socket without stalling its peers.
                        accept_counters.sockopt_failures.fetch_add(1, Ordering::Relaxed);
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                        continue;
                    }
                    let Ok(control) = stream.try_clone() else {
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                        continue;
                    };
                    let outbox = Arc::new(Mutex::new(Outbox::default()));
                    let queued_bytes = Arc::new(AtomicUsize::new(0));
                    let gate = Arc::new(Gate::default());
                    let thread = (id.0 as usize) % accept_pool.len();
                    accept_conns.lock().insert(
                        id,
                        ConnShared {
                            outbox: outbox.clone(),
                            queued_bytes: queued_bytes.clone(),
                            gate: gate.clone(),
                            control,
                            thread,
                        },
                    );
                    if tx.send(NetEvent::Connected(id)).is_err() {
                        break;
                    }
                    // audit: infallible — thread is id % accept_pool.len()
                    let (cmds, waker) = &accept_pool[thread];
                    if cmds.send(Cmd::Register(id, stream, outbox, queued_bytes, gate)).is_err() {
                        break;
                    }
                    waker.wake();
                }
            })?;

        Ok(TcpHost {
            local_addr,
            config,
            events: rx,
            conns,
            counters,
            shutdown,
            pool,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The active queue/slow-consumer configuration.
    pub fn config(&self) -> TcpHostConfig {
        self.config
    }

    /// Receiver of connection events.
    pub fn events(&self) -> &Receiver<NetEvent> {
        &self.events
    }

    /// Current transport counters.
    pub fn stats(&self) -> TcpStats {
        self.stats_handle().snapshot()
    }

    /// A cloneable handle that can snapshot [`TcpStats`] after the host
    /// moved into a server thread.
    pub fn stats_handle(&self) -> TcpStatsHandle {
        TcpStatsHandle { counters: self.counters.clone(), conns: self.conns.clone() }
    }

    /// Queued (not yet fully written) outbound batches for one
    /// connection.
    pub fn queue_depth(&self, conn: ConnId) -> Option<usize> {
        self.conns.lock().get(&conn).map(|c| c.outbox.lock().batches.len())
    }

    /// Sends a message to one connection by enqueueing it on the
    /// connection's outbox and waking the owning poll thread; does not
    /// block on the socket.
    ///
    /// # Errors
    ///
    /// `NotConnected` if the connection is gone; `TimedOut` if the
    /// connection's backlog stayed over budget past the enqueue timeout
    /// (the connection is then evicted as a slow consumer).
    pub fn send(&self, conn: ConnId, msg: &Message) -> io::Result<()> {
        self.send_frame(conn, &codec::frame_message_shared(msg))
    }

    /// Sends one pre-encoded frame to one connection. The frame buffer
    /// is shared, not copied — fanning the same [`SharedFrame`] out to
    /// many connections enqueues cheap handles to a single allocation.
    ///
    /// # Errors
    ///
    /// Same as [`TcpHost::send`].
    pub fn send_frame(&self, conn: ConnId, frame: &SharedFrame) -> io::Result<()> {
        let bytes = frame.bytes().clone();
        self.enqueue(conn, OutBatch { bytes: bytes.len(), segments: vec![bytes], frames: 1 })
    }

    /// Sends a whole server turn of pre-encoded frames, coalescing all
    /// frames that target the same connection into a single queued
    /// (vectored) write. A shared frame fanned out to many connections
    /// lands here as cheap clones of one buffer — nothing is re-encoded
    /// or concatenated per destination. Returns the connections that
    /// could not be delivered to (gone or evicted); the poll loop
    /// surfaces [`NetEvent::Disconnected`] for them.
    pub fn send_batch(&self, outgoing: &[(ConnId, SharedFrame)]) -> Vec<ConnId> {
        let mut order: Vec<ConnId> = Vec::new();
        let mut per_conn: HashMap<ConnId, OutBatch> = HashMap::new();
        for (conn, frame) in outgoing {
            let batch = per_conn.entry(*conn).or_insert_with(|| {
                order.push(*conn);
                OutBatch { segments: Vec::new(), frames: 0, bytes: 0 }
            });
            batch.segments.push(frame.bytes().clone());
            batch.bytes += frame.len();
            batch.frames += 1;
        }
        let mut failed = Vec::new();
        for conn in order {
            // Grouped above; a missing entry is reported as a failed
            // send rather than a host panic.
            let Some(batch) = per_conn.remove(&conn) else {
                failed.push(conn);
                continue;
            };
            if self.enqueue(conn, batch).is_err() {
                failed.push(conn);
            }
        }
        failed
    }

    fn enqueue(&self, conn: ConnId, batch: OutBatch) -> io::Result<()> {
        // Hold the map lock only to clone the connection's handles: the
        // admission wait happens outside, so a full backlog on one
        // connection never blocks sends to its peers.
        let (outbox, queued_bytes, gate, thread) = match self.conns.lock().get(&conn) {
            Some(c) => (c.outbox.clone(), c.queued_bytes.clone(), c.gate.clone(), c.thread),
            None => {
                self.counters.frames_dropped.fetch_add(batch.frames, Ordering::Relaxed);
                return Err(io::Error::new(io::ErrorKind::NotConnected, "connection closed"));
            }
        };
        let frames = batch.frames;
        let bytes = batch.bytes;
        let deadline = Instant::now() + self.config.enqueue_timeout;
        let mut waited = false;
        let mut batch = Some(batch);
        loop {
            // Capture the gate generation *before* checking admission:
            // a drain that lands in between bumps it, so the wait below
            // returns immediately instead of losing the wakeup.
            let seen = gate.generation();
            {
                let mut ob = outbox.lock();
                if ob.closed {
                    self.counters.frames_dropped.fetch_add(frames, Ordering::Relaxed);
                    return Err(io::Error::new(io::ErrorKind::NotConnected, "connection closed"));
                }
                let cur = queued_bytes.load(Ordering::Acquire);
                let empty = ob.batches.is_empty();
                let bytes_ok = empty || cur + bytes <= self.config.queue_max_bytes;
                let cap_ok = ob.batches.len() < self.config.queue_capacity.max(1);
                if bytes_ok && cap_ok {
                    // Admission happens exactly once; a double-take is
                    // reported to the caller instead of panicking with
                    // the outbox lock held.
                    let Some(admitted) = batch.take() else {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidInput,
                            "batch admitted twice",
                        ));
                    };
                    queued_bytes.fetch_add(bytes, Ordering::AcqRel);
                    ob.batches.push_back(admitted);
                    drop(ob);
                    if let Some(t) = self.pool.get(thread) {
                        t.waker.wake();
                    }
                    return Ok(());
                }
            }
            if !waited {
                waited = true;
                self.counters.enqueue_full_waits.fetch_add(1, Ordering::Relaxed);
            }
            let now = Instant::now();
            if now >= deadline {
                self.counters.frames_dropped.fetch_add(frames, Ordering::Relaxed);
                self.evict_slow_consumer(conn);
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "slow consumer: outbound backlog stayed over budget past the enqueue timeout",
                ));
            }
            gate.wait(seen, deadline - now);
        }
    }

    /// Forcibly disconnects a consumer whose backlog stayed over budget.
    /// The owning poll thread surfaces the [`NetEvent::Disconnected`].
    fn evict_slow_consumer(&self, conn: ConnId) {
        if let Some(c) = self.conns.lock().remove(&conn) {
            self.counters.slow_consumer_evictions.fetch_add(1, Ordering::Relaxed);
            c.control.shutdown(std::net::Shutdown::Both).ok();
            if let Some(t) = self.pool.get(c.thread) {
                let _ = t.cmds.send(Cmd::Close(conn));
                t.waker.wake();
            }
        }
    }

    /// Closes one connection; the owning poll thread will surface a
    /// [`NetEvent::Disconnected`].
    pub fn disconnect(&self, conn: ConnId) {
        if let Some(c) = self.conns.lock().remove(&conn) {
            c.control.shutdown(std::net::Shutdown::Both).ok();
            if let Some(t) = self.pool.get(c.thread) {
                let _ = t.cmds.send(Cmd::Close(conn));
                t.waker.wake();
            }
        }
    }
}

impl Drop for TcpHost {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a dummy connection. A wildcard
        // bind address (0.0.0.0 / ::) is not reliably connectable, so
        // aim the wake-up at the loopback of the same family instead.
        let wake_ip = if self.local_addr.ip().is_unspecified() {
            match self.local_addr.ip() {
                IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            }
        } else {
            self.local_addr.ip()
        };
        let wake_addr = SocketAddr::new(wake_ip, self.local_addr.port());
        let _ = TcpStream::connect_timeout(&wake_addr, Duration::from_millis(100));
        if let Some(h) = self.accept_thread.take() {
            h.join().ok();
        }
        // With the accept thread joined, no further registrations can
        // race the pool shutdown; each poll thread tears its
        // connections down (counting unwritten frames as dropped).
        for h in &mut self.pool {
            let _ = h.cmds.send(Cmd::Shutdown);
            h.waker.wake();
        }
        for h in &mut self.pool {
            if let Some(t) = h.thread.take() {
                t.join().ok();
            }
        }
    }
}

/// Connection lifecycle notification from a [`TcpClient`] running with a
/// [`ReconnectPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientEvent {
    /// The connection dropped; the reconnect loop is running.
    Disconnected,
    /// A fresh connection replaced the dropped one after `attempts`
    /// dial attempts. The application must resynchronize (the COSOFT
    /// session layer does so by rejoining).
    Reconnected {
        /// Dial attempts this outage took (≥ 1).
        attempts: u32,
    },
    /// The policy's attempt budget is exhausted; the client stays dead.
    GaveUp,
}

/// Why a [`TcpClient::recv_within`] call returned without a message.
///
/// The old `recv_timeout` collapsed both cases to `None`, which forced
/// callers to guess "quiet or dead?" with heuristics; this distinction
/// lets them stop guessing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No message arrived within the timeout; as far as the client
    /// knows the connection is still alive (or being revived by the
    /// reconnect loop).
    Timeout,
    /// The connection is gone for good — closed, failed without a
    /// reconnect policy, or the reconnect loop gave up. No message will
    /// ever arrive again.
    Disconnected,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Timeout => f.write_str("receive timed out"),
            RecvError::Disconnected => f.write_str("connection closed"),
        }
    }
}

impl std::error::Error for RecvError {}

/// Exponential-backoff policy for [`TcpClient::connect_with_reconnect`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconnectPolicy {
    /// Dial attempts per outage before giving up.
    pub max_attempts: u32,
    /// Delay before the first redial; doubles per failed attempt.
    pub base_delay: Duration,
    /// Upper bound on the (pre-jitter) backoff delay.
    pub max_delay: Duration,
    /// Fraction in `[0, 1]` of random extra delay added on top of the
    /// backoff, so a fleet of clients does not redial in lockstep.
    pub jitter: f64,
    /// Seed for the jitter stream. `None` (the default) draws from
    /// OS-seeded entropy — right for production fleets; `Some(seed)`
    /// makes every redial delay a pure function of `(seed, attempt)` —
    /// right for tests and reproducible chaos runs.
    pub jitter_seed: Option<u64>,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            jitter: 0.2,
            jitter_seed: None,
        }
    }
}

impl ReconnectPolicy {
    /// The sleep before dial attempt `attempt` (1-based): exponential
    /// backoff capped at `max_delay`, plus up to `jitter` of random
    /// extra delay.
    fn delay_before(&self, attempt: u32) -> Duration {
        let backoff = self
            .base_delay
            .saturating_mul(1u32.checked_shl(attempt.saturating_sub(1)).unwrap_or(u32::MAX))
            .min(self.max_delay);
        if self.jitter <= 0.0 {
            return backoff;
        }
        let unit = match self.jitter_seed {
            // SplitMix64 over (seed, attempt): deterministic, and
            // distinct seeds decorrelate a fleet of seeded clients.
            Some(seed) => {
                let mut z =
                    seed.wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) % 1024
            }
            // A throwaway `RandomState` is a seeded-by-the-OS hash —
            // enough entropy to de-synchronize redials without pulling
            // in an RNG.
            None => {
                use std::hash::{BuildHasher, Hasher};
                let mut h = std::collections::hash_map::RandomState::new().build_hasher();
                h.write_u32(attempt);
                h.finish() % 1024
            }
        } as f64
            / 1024.0;
        backoff.mul_f64(1.0 + self.jitter.clamp(0.0, 1.0) * unit)
    }
}

/// Outbound frames a client may queue before [`TcpClient::send`] has to
/// wait on the writer thread.
const CLIENT_OUTBOX_CAPACITY: usize = 64;

/// How long [`TcpClient::send`] may wait on a full outbox, and how long
/// [`TcpClient::close`] waits for queued frames (e.g. a graceful
/// `Deregister`) to flush before tearing the socket down.
const CLIENT_FLUSH_TIMEOUT: Duration = Duration::from_millis(500);

/// Connecting side of the TCP transport (used by application instances).
///
/// Writes go through a bounded outbox drained by a dedicated writer
/// thread, so [`TcpClient::send`] never blocks on the socket and — the
/// important part — never holds the stream lock across a write: a
/// wedged write used to pin that lock and block `send`/`close`/`sever`
/// (and the reconnect swap) indefinitely.
pub struct TcpClient {
    stream: Arc<Mutex<TcpStream>>,
    outbox: Sender<Bytes>,
    /// Frames enqueued but not yet written (close drains these briefly).
    pending_writes: Arc<AtomicUsize>,
    /// Signaled by the writer thread as `pending_writes` drains, so
    /// `close` can wait for the flush without sleep-polling.
    flushed: Arc<Gate>,
    /// Set by the writer on an unrecoverable write error (no reconnect
    /// policy): later sends fail fast instead of queueing into a void.
    broken: Arc<AtomicBool>,
    incoming: Receiver<Message>,
    events: Option<Receiver<ClientEvent>>,
    closed: Arc<AtomicBool>,
    reconnects: Arc<AtomicU64>,
    reconnect_attempts: Arc<AtomicU64>,
    sockopt_failures: Arc<AtomicU64>,
    /// Latest `Busy { retry_after_ms }` seen from the server; the
    /// reconnect loop treats it as a backoff floor and clears it once a
    /// redial succeeds.
    busy_advice_ms: Arc<AtomicU64>,
    _reader: JoinHandle<()>,
    _writer: JoinHandle<()>,
}

impl std::fmt::Debug for TcpClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpClient").finish_non_exhaustive()
    }
}

impl TcpClient {
    /// Connects to a [`TcpHost`] and starts the reader thread. The
    /// connection is not revived when it drops; use
    /// [`TcpClient::connect_with_reconnect`] for that.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: SocketAddr) -> io::Result<TcpClient> {
        Self::spawn(addr, None)
    }

    /// Connects to a [`TcpHost`] and keeps the connection alive: when it
    /// drops, a reader-side loop redials `addr` with exponential backoff
    /// and jitter per `policy`, swapping the fresh socket in under the
    /// same client handle. Lifecycle transitions are surfaced through
    /// [`TcpClient::events`]; on [`ClientEvent::Reconnected`] the
    /// application must resynchronize (rejoin) — messages sent during
    /// the outage were lost, not queued.
    ///
    /// # Errors
    ///
    /// Propagates failures of the *initial* connection only.
    pub fn connect_with_reconnect(
        addr: SocketAddr,
        policy: ReconnectPolicy,
    ) -> io::Result<TcpClient> {
        Self::spawn(addr, Some(policy))
    }

    fn spawn(addr: SocketAddr, policy: Option<ReconnectPolicy>) -> io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        let sockopt_failures = Arc::new(AtomicU64::new(0));
        if stream.set_nodelay(true).is_err() {
            sockopt_failures.fetch_add(1, Ordering::Relaxed);
        }
        let stream = Arc::new(Mutex::new(stream));
        let closed = Arc::new(AtomicBool::new(false));
        let broken = Arc::new(AtomicBool::new(false));
        let pending_writes = Arc::new(AtomicUsize::new(0));
        let flushed = Arc::new(Gate::default());
        let reconnects = Arc::new(AtomicU64::new(0));
        let reconnect_attempts = Arc::new(AtomicU64::new(0));
        let busy_advice_ms = Arc::new(AtomicU64::new(0));
        let (tx, rx): (Sender<Message>, Receiver<Message>) = unbounded();
        let (outbox_tx, outbox_rx): (Sender<Bytes>, Receiver<Bytes>) =
            bounded(CLIENT_OUTBOX_CAPACITY);
        let (event_tx, event_rx) = match policy {
            Some(_) => {
                let (t, r) = unbounded();
                (Some(t), Some(r))
            }
            None => (None, None),
        };
        let reader = {
            let stream = Arc::clone(&stream);
            let closed = Arc::clone(&closed);
            let reconnects = Arc::clone(&reconnects);
            let reconnect_attempts = Arc::clone(&reconnect_attempts);
            let sockopt_failures = Arc::clone(&sockopt_failures);
            let busy_advice_ms = Arc::clone(&busy_advice_ms);
            std::thread::Builder::new().name("cosoft-client-reader".into()).spawn(move || {
                Self::reader_loop(
                    addr,
                    policy,
                    &stream,
                    &closed,
                    &reconnects,
                    &reconnect_attempts,
                    &sockopt_failures,
                    &busy_advice_ms,
                    &tx,
                    event_tx.as_ref(),
                );
            })
        };
        let reader = match reader {
            Ok(handle) => handle,
            Err(e) => {
                // Surface thread exhaustion as a connect failure; close
                // the socket so the peer sees the dead connection.
                let _ = stream.lock().shutdown(std::net::Shutdown::Both);
                return Err(e);
            }
        };
        let writer = {
            let stream = Arc::clone(&stream);
            let closed = Arc::clone(&closed);
            let broken = Arc::clone(&broken);
            let pending = Arc::clone(&pending_writes);
            let flushed = Arc::clone(&flushed);
            let has_reconnect = policy.is_some();
            std::thread::Builder::new().name("cosoft-client-writer".into()).spawn(move || {
                Self::writer_loop(
                    outbox_rx,
                    &stream,
                    &closed,
                    &broken,
                    &pending,
                    &flushed,
                    has_reconnect,
                )
            })
        };
        let writer = match writer {
            Ok(handle) => handle,
            Err(e) => {
                // The reader is already running: mark the client closed
                // and shut the socket down so it exits instead of
                // leaking, then report the failure to the caller.
                closed.store(true, Ordering::SeqCst);
                let _ = stream.lock().shutdown(std::net::Shutdown::Both);
                return Err(e);
            }
        };
        Ok(TcpClient {
            stream,
            outbox: outbox_tx,
            pending_writes,
            flushed,
            broken,
            incoming: rx,
            events: event_rx,
            closed,
            reconnects,
            reconnect_attempts,
            sockopt_failures,
            busy_advice_ms,
            _reader: reader,
            _writer: writer,
        })
    }

    fn writer_loop(
        outbox: Receiver<Bytes>,
        stream: &Mutex<TcpStream>,
        closed: &AtomicBool,
        broken: &AtomicBool,
        pending: &AtomicUsize,
        flushed: &Gate,
        has_reconnect: bool,
    ) {
        while let Ok(frame) = outbox.recv() {
            // Clone the fd under the lock, write on the clone with the
            // lock released: a wedged socket write must never pin the
            // stream mutex (close/sever and the reconnect swap need it).
            let cloned = stream.lock().try_clone();
            let result = match cloned {
                Ok(mut s) => s.write_all(&frame),
                Err(e) => Err(e),
            };
            pending.fetch_sub(1, Ordering::AcqRel);
            flushed.notify();
            if result.is_err() {
                if closed.load(Ordering::SeqCst) {
                    break;
                }
                if !has_reconnect {
                    // No reconnect loop will revive the socket; fail
                    // later sends fast instead of queueing into a void.
                    broken.store(true, Ordering::SeqCst);
                    break;
                }
                // With a reconnect policy the reader loop swaps a fresh
                // stream in; this frame is lost (documented), later
                // frames go to the new socket.
            }
        }
        for _ in outbox.try_iter() {
            pending.fetch_sub(1, Ordering::AcqRel);
        }
        flushed.notify();
    }

    #[allow(clippy::too_many_arguments)]
    fn reader_loop(
        addr: SocketAddr,
        policy: Option<ReconnectPolicy>,
        stream: &Mutex<TcpStream>,
        closed: &AtomicBool,
        reconnects: &AtomicU64,
        reconnect_attempts: &AtomicU64,
        sockopt_failures: &AtomicU64,
        busy_advice_ms: &AtomicU64,
        tx: &Sender<Message>,
        event_tx: Option<&Sender<ClientEvent>>,
    ) {
        loop {
            let Ok(reader_stream) = stream.lock().try_clone() else {
                return;
            };
            let mut reader = BufReader::new(reader_stream);
            while let Ok(Some(msg)) = codec::read_frame(&mut reader) {
                // An overloaded server's `Busy` carries backoff advice;
                // remember the latest so a redial after an eviction does
                // not dial straight back into the shed window. The
                // message still reaches the application unchanged.
                if let Message::Busy { retry_after_ms } = &msg {
                    busy_advice_ms.store(*retry_after_ms, Ordering::Relaxed);
                }
                if tx.send(msg).is_err() {
                    return;
                }
            }
            // Read side ended: clean close, error, or eviction.
            let Some(policy) = policy else {
                return;
            };
            if closed.load(Ordering::SeqCst) {
                return;
            }
            if let Some(events) = event_tx {
                events.send(ClientEvent::Disconnected).ok();
            }
            let mut attempts = 0u32;
            loop {
                if attempts >= policy.max_attempts {
                    if let Some(events) = event_tx {
                        events.send(ClientEvent::GaveUp).ok();
                    }
                    return;
                }
                attempts += 1;
                reconnect_attempts.fetch_add(1, Ordering::Relaxed);
                // The server's retry advice is a floor under the
                // policy's own backoff, never a shortcut below it.
                let advice = Duration::from_millis(busy_advice_ms.load(Ordering::Relaxed));
                std::thread::sleep(policy.delay_before(attempts).max(advice));
                if closed.load(Ordering::SeqCst) {
                    return;
                }
                match TcpStream::connect(addr) {
                    Ok(fresh) => {
                        if fresh.set_nodelay(true).is_err() {
                            sockopt_failures.fetch_add(1, Ordering::Relaxed);
                        }
                        *stream.lock() = fresh;
                        // close() may have raced the swap: shut the fresh
                        // socket down too rather than resurrecting a
                        // client the application already closed.
                        if closed.load(Ordering::SeqCst) {
                            stream.lock().shutdown(std::net::Shutdown::Both).ok();
                            return;
                        }
                        reconnects.fetch_add(1, Ordering::Relaxed);
                        // Advice consumed: the next outage starts from
                        // the policy's own backoff again.
                        busy_advice_ms.store(0, Ordering::Relaxed);
                        if let Some(events) = event_tx {
                            events.send(ClientEvent::Reconnected { attempts }).ok();
                        }
                        break;
                    }
                    Err(_) => continue,
                }
            }
        }
    }

    /// Sends a message to the server by enqueueing it on the client's
    /// writer thread; does not block on the socket (a wedged write no
    /// longer blocks further sends, pings, or `close`).
    ///
    /// # Errors
    ///
    /// `NotConnected` once the client is closed, `BrokenPipe` after an
    /// unrecoverable write error (no reconnect policy), `TimedOut` if
    /// the outbox stayed full past the flush timeout. Write errors on a
    /// reconnect-enabled client are not surfaced here: the frame is
    /// lost and the reconnect loop revives the connection.
    pub fn send(&self, msg: &Message) -> io::Result<()> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(io::Error::new(io::ErrorKind::NotConnected, "client closed"));
        }
        if self.broken.load(Ordering::SeqCst) {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "connection failed"));
        }
        let frame = codec::frame_message_shared(msg).into_bytes();
        self.pending_writes.fetch_add(1, Ordering::AcqRel);
        let undo_pending = |e: io::Error| {
            self.pending_writes.fetch_sub(1, Ordering::AcqRel);
            Err(e)
        };
        let frame = match self.outbox.try_send(frame) {
            Ok(()) => return Ok(()),
            Err(TrySendError::Disconnected(_)) => {
                return undo_pending(io::Error::new(
                    io::ErrorKind::NotConnected,
                    "client writer stopped",
                ));
            }
            Err(TrySendError::Full(f)) => f,
        };
        match self.outbox.send_timeout(frame, CLIENT_FLUSH_TIMEOUT) {
            Ok(()) => Ok(()),
            Err(SendTimeoutError::Disconnected(_)) => {
                undo_pending(io::Error::new(io::ErrorKind::NotConnected, "client writer stopped"))
            }
            Err(SendTimeoutError::Timeout(_)) => undo_pending(io::Error::new(
                io::ErrorKind::TimedOut,
                "outbox stayed full past the flush timeout",
            )),
        }
    }

    /// Receives the next message, blocking up to `timeout`.
    ///
    /// Returns `None` on timeout or when the connection closed; use
    /// [`TcpClient::recv_within`] to tell the two cases apart.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Message> {
        self.recv_within(timeout).ok()
    }

    /// Receives the next message, blocking up to `timeout`, and — unlike
    /// [`TcpClient::recv_timeout`] — says *why* there was no message:
    /// [`RecvError::Timeout`] means "quiet but alive", while
    /// [`RecvError::Disconnected`] means the connection is gone for good
    /// and waiting longer is pointless.
    ///
    /// # Errors
    ///
    /// [`RecvError`] when no message arrived.
    pub fn recv_within(&self, timeout: Duration) -> Result<Message, RecvError> {
        self.incoming.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => RecvError::Timeout,
            RecvTimeoutError::Disconnected => RecvError::Disconnected,
        })
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Message> {
        self.incoming.try_recv().ok()
    }

    /// Receiver handle for select-style integration.
    pub fn incoming(&self) -> &Receiver<Message> {
        &self.incoming
    }

    /// Lifecycle events, present when the client was created with
    /// [`TcpClient::connect_with_reconnect`].
    pub fn events(&self) -> Option<&Receiver<ClientEvent>> {
        self.events.as_ref()
    }

    /// Successful reconnections performed by the reconnect loop.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// Dial attempts made by the reconnect loop (successful or not).
    pub fn reconnect_attempts(&self) -> u64 {
        self.reconnect_attempts.load(Ordering::Relaxed)
    }

    /// Socket-option calls (`set_nodelay`) that failed on this client's
    /// connections, including reconnect swaps. Nonzero means the
    /// platform is misbehaving (latency will suffer), not that the
    /// connection is broken.
    pub fn sockopt_failures(&self) -> u64 {
        self.sockopt_failures.load(Ordering::Relaxed)
    }

    /// The latest `Busy { retry_after_ms }` advice seen from the server,
    /// in milliseconds; `0` when none is pending. The reconnect loop
    /// sleeps at least this long before each redial and resets the
    /// advice once a redial succeeds.
    pub fn busy_advice_ms(&self) -> u64 {
        self.busy_advice_ms.load(Ordering::Relaxed)
    }

    /// Shuts the connection down; the server sees a disconnect and the
    /// reconnect loop (if any) stops instead of redialing. Waits up to
    /// the flush timeout for already-queued frames (e.g. a graceful
    /// `Deregister`) to reach the socket — but no longer: a wedged
    /// socket cannot hold `close` hostage.
    pub fn close(&self) {
        self.flush_and_shutdown();
    }

    fn flush_and_shutdown(&self) {
        // Only the first closer drains; a repeated close (or the Drop
        // that follows an explicit close) goes straight to shutdown.
        if !self.closed.swap(true, Ordering::SeqCst) {
            let deadline = Instant::now() + CLIENT_FLUSH_TIMEOUT;
            loop {
                // Generation before the check, so a drain landing right
                // after the check still wakes the wait (no lost signal,
                // no sleep-poll).
                let seen = self.flushed.generation();
                if self.pending_writes.load(Ordering::Acquire) == 0 {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                self.flushed.wait(seen, deadline - now);
            }
        }
        self.stream.lock().shutdown(std::net::Shutdown::Both).ok();
    }

    /// Kills the current connection *without* marking the client closed —
    /// indistinguishable from a network failure, so a reconnect-enabled
    /// client redials. Intended for fault-injection tests.
    pub fn sever(&self) {
        self.stream.lock().shutdown(std::net::Shutdown::Both).ok();
    }
}

impl Drop for TcpClient {
    fn drop(&mut self) {
        // The reader thread holds a cloned file descriptor; an explicit
        // shutdown is required so dropping the client actually closes the
        // connection (and unblocks the reader).
        self.flush_and_shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosoft_wire::{InstanceId, Target, UserId};
    use std::time::Instant;

    const TIMEOUT: Duration = Duration::from_secs(5);

    fn big_payload_msg(kb: usize) -> Message {
        Message::CommandDelivery {
            from: InstanceId(1),
            command: "blob".into(),
            payload: vec![0xA5; kb * 1024],
        }
    }

    #[test]
    fn round_trip_over_real_sockets() {
        let host = TcpHost::bind("127.0.0.1:0").unwrap();
        let client = TcpClient::connect(host.local_addr()).unwrap();

        let conn = match host.events().recv_timeout(TIMEOUT).unwrap() {
            NetEvent::Connected(c) => c,
            other => panic!("expected Connected, got {other:?}"),
        };

        client
            .send(&Message::Register {
                user: UserId(7),
                host: "ws1".into(),
                app_name: "demo".into(),
            })
            .unwrap();
        match host.events().recv_timeout(TIMEOUT).unwrap() {
            NetEvent::Message(c, Message::Register { user, .. }) => {
                assert_eq!(c, conn);
                assert_eq!(user, UserId(7));
            }
            other => panic!("expected Register, got {other:?}"),
        }

        host.send(conn, &Message::Welcome { instance: InstanceId(3) }).unwrap();
        match client.recv_timeout(TIMEOUT).unwrap() {
            Message::Welcome { instance } => assert_eq!(instance, InstanceId(3)),
            other => panic!("expected Welcome, got {other:?}"),
        }

        let stats = host.stats();
        assert_eq!(stats.frames_in, 1);
        assert!(stats.bytes_in > 0);
        assert!(stats.bytes_out > 0);
        assert_eq!(stats.active_connections, 1);
        // Loopback sockets accept both options; a nonzero count here
        // would mean the counters misfire on the healthy path.
        assert_eq!(stats.sockopt_failures, 0);
        assert_eq!(client.sockopt_failures(), 0);
    }

    #[test]
    fn disconnect_is_surfaced() {
        let host = TcpHost::bind("127.0.0.1:0").unwrap();
        let client = TcpClient::connect(host.local_addr()).unwrap();
        let conn = match host.events().recv_timeout(TIMEOUT).unwrap() {
            NetEvent::Connected(c) => c,
            other => panic!("expected Connected, got {other:?}"),
        };
        client.close();
        match host.events().recv_timeout(TIMEOUT).unwrap() {
            NetEvent::Disconnected(c) => assert_eq!(c, conn),
            other => panic!("expected Disconnected, got {other:?}"),
        }
        assert!(host.send(conn, &Message::QueryInstances).is_err());
    }

    #[test]
    fn multiple_clients_multiplex() {
        let host = TcpHost::bind("127.0.0.1:0").unwrap();
        let c1 = TcpClient::connect(host.local_addr()).unwrap();
        let c2 = TcpClient::connect(host.local_addr()).unwrap();
        let mut conns = Vec::new();
        for _ in 0..2 {
            match host.events().recv_timeout(TIMEOUT).unwrap() {
                NetEvent::Connected(c) => conns.push(c),
                other => panic!("expected Connected, got {other:?}"),
            }
        }
        c1.send(&Message::QueryInstances).unwrap();
        c2.send(&Message::Deregister).unwrap();
        let mut got = Vec::new();
        for _ in 0..2 {
            match host.events().recv_timeout(TIMEOUT).unwrap() {
                NetEvent::Message(c, m) => got.push((c, m.kind_name())),
                other => panic!("expected Message, got {other:?}"),
            }
        }
        got.sort();
        assert_eq!(got.len(), 2);
        assert_ne!(got[0].0, got[1].0);
    }

    #[test]
    fn send_batch_coalesces_per_connection() {
        let host = TcpHost::bind("127.0.0.1:0").unwrap();
        let client = TcpClient::connect(host.local_addr()).unwrap();
        let conn = match host.events().recv_timeout(TIMEOUT).unwrap() {
            NetEvent::Connected(c) => c,
            other => panic!("expected Connected, got {other:?}"),
        };
        let outgoing: Vec<(ConnId, SharedFrame)> = (1..=5)
            .map(|i| {
                (conn, codec::frame_message_shared(&Message::Welcome { instance: InstanceId(i) }))
            })
            .collect();
        let failed = host.send_batch(&outgoing);
        assert!(failed.is_empty());
        // All five frames arrive, in order.
        for i in 1..=5 {
            match client.recv_timeout(TIMEOUT).unwrap() {
                Message::Welcome { instance } => assert_eq!(instance, InstanceId(i)),
                other => panic!("expected Welcome, got {other:?}"),
            }
        }
        assert_eq!(host.stats().frames_out, 5);
    }

    /// Tentpole regression: a stalled consumer (socket accepted, never
    /// reading) must not delay delivery to a healthy peer.
    #[test]
    fn stalled_consumer_does_not_delay_healthy_peer() {
        let config = TcpHostConfig {
            queue_capacity: 8,
            enqueue_timeout: Duration::from_secs(2),
            ..TcpHostConfig::default()
        };
        let host = TcpHost::bind_with_config("127.0.0.1:0", config).unwrap();

        // Stalled client: raw socket that never reads.
        let stalled_socket = std::net::TcpStream::connect(host.local_addr()).unwrap();
        let stalled = match host.events().recv_timeout(TIMEOUT).unwrap() {
            NetEvent::Connected(c) => c,
            other => panic!("expected Connected, got {other:?}"),
        };
        let healthy_client = TcpClient::connect(host.local_addr()).unwrap();
        let healthy = match host.events().recv_timeout(TIMEOUT).unwrap() {
            NetEvent::Connected(c) => c,
            other => panic!("expected Connected, got {other:?}"),
        };

        // Fill the stalled connection's socket buffer and part of its
        // outbox: big frames wedge in the kernel buffer, sends keep
        // succeeding as long as the outbox has room.
        let blob = big_payload_msg(256);
        let mut queued = 0;
        for _ in 0..config.queue_capacity {
            if host.send(stalled, &blob).is_err() {
                break;
            }
            queued += 1;
        }
        assert!(queued >= 2, "expected several sends to enqueue, got {queued}");

        // A send to the healthy peer must neither block nor be delayed
        // behind the stalled connection's backlog.
        let t0 = Instant::now();
        host.send(healthy, &Message::Welcome { instance: InstanceId(9) }).unwrap();
        let enqueue_elapsed = t0.elapsed();
        assert!(
            enqueue_elapsed < Duration::from_millis(100),
            "send to healthy peer took {enqueue_elapsed:?}"
        );
        match healthy_client.recv_timeout(TIMEOUT) {
            Some(Message::Welcome { instance }) => assert_eq!(instance, InstanceId(9)),
            other => panic!("healthy peer did not receive its message: {other:?}"),
        }
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "delivery to healthy peer was delayed by the stalled consumer"
        );
        drop(stalled_socket);
    }

    /// Tentpole regression: a consumer whose backlog stays over budget
    /// past the enqueue timeout is evicted and surfaced as Disconnected.
    #[test]
    fn slow_consumer_is_evicted() {
        let config = TcpHostConfig {
            queue_capacity: 2,
            enqueue_timeout: Duration::from_millis(100),
            ..TcpHostConfig::default()
        };
        let host = TcpHost::bind_with_config("127.0.0.1:0", config).unwrap();
        let stalled_socket = std::net::TcpStream::connect(host.local_addr()).unwrap();
        let stalled = match host.events().recv_timeout(TIMEOUT).unwrap() {
            NetEvent::Connected(c) => c,
            other => panic!("expected Connected, got {other:?}"),
        };

        let blob = big_payload_msg(512);
        let mut evicted = false;
        for _ in 0..64 {
            match host.send(stalled, &blob) {
                Ok(()) => continue,
                Err(e) => {
                    assert_eq!(e.kind(), io::ErrorKind::TimedOut, "unexpected error: {e}");
                    evicted = true;
                    break;
                }
            }
        }
        assert!(evicted, "slow consumer was never evicted");
        match host.events().recv_timeout(TIMEOUT).unwrap() {
            NetEvent::Disconnected(c) => assert_eq!(c, stalled),
            other => panic!("expected Disconnected, got {other:?}"),
        }
        let stats = host.stats();
        assert_eq!(stats.slow_consumer_evictions, 1);
        assert!(stats.enqueue_full_waits >= 1);
        assert_eq!(stats.active_connections, 0);
        // Further sends fail fast with NotConnected.
        let err = host.send(stalled, &Message::QueryInstances).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotConnected);
        drop(stalled_socket);
    }

    /// Satellite regression (backpressure wakeup): an enqueue blocked on
    /// a full byte budget must wake *when the poll thread drains bytes*,
    /// not by polling a sleep loop or waiting out its timeout. The
    /// consumer starts reading shortly after the backlog fills; with a
    /// 5 s enqueue timeout, the whole burst completing fast proves every
    /// blocked enqueue was woken by the drain.
    #[test]
    fn blocked_enqueue_wakes_on_drain_not_timeout() {
        const ROUNDS: usize = 40;
        let config = TcpHostConfig {
            queue_capacity: 4,
            queue_max_bytes: 512 * 1024,
            enqueue_timeout: Duration::from_secs(5),
            ..TcpHostConfig::default()
        };
        let host = TcpHost::bind_with_config("127.0.0.1:0", config).unwrap();
        let socket = std::net::TcpStream::connect(host.local_addr()).unwrap();
        let conn = match host.events().recv_timeout(TIMEOUT).unwrap() {
            NetEvent::Connected(c) => c,
            other => panic!("expected Connected, got {other:?}"),
        };

        // Late-starting consumer: the backlog fills first (kernel buffer
        // + byte budget << ROUNDS × 256 KiB), then drains steadily.
        let drainer = std::thread::spawn(move || {
            use std::io::Read;
            std::thread::sleep(Duration::from_millis(150));
            let mut socket = socket;
            let mut sink = vec![0u8; 64 * 1024];
            let mut total = 0usize;
            while total < ROUNDS * (256 * 1024) {
                match socket.read(&mut sink) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => total += n,
                }
            }
            socket
        });

        let blob = big_payload_msg(256);
        let t0 = Instant::now();
        for round in 0..ROUNDS {
            host.send(conn, &blob).unwrap_or_else(|e| panic!("send {round} failed: {e}"));
        }
        let elapsed = t0.elapsed();

        let stats = host.stats();
        assert!(stats.enqueue_full_waits >= 1, "the backlog never filled; test proves nothing");
        assert_eq!(stats.slow_consumer_evictions, 0, "drained consumer was evicted");
        // 40 × 256 KiB over loopback drains in well under a second once
        // the consumer starts; a sleep-poll adds ~1 ms per wait and
        // still passes, but waiting out even one 5 s timeout cannot.
        assert!(
            elapsed < Duration::from_secs(4),
            "blocked enqueues did not wake on drain (burst took {elapsed:?})"
        );
        let socket = drainer.join().unwrap();
        drop(socket);
    }

    /// Satellite regression (recv distinction): `recv_within` reports
    /// "quiet but alive" and "gone for good" differently, so callers no
    /// longer need the timeout-or-channel-quiet guessing the collapsed
    /// `recv_timeout` forced on them.
    #[test]
    fn recv_within_distinguishes_timeout_from_disconnect() {
        let host = TcpHost::bind("127.0.0.1:0").unwrap();
        let client = TcpClient::connect(host.local_addr()).unwrap();
        let conn = match host.events().recv_timeout(TIMEOUT).unwrap() {
            NetEvent::Connected(c) => c,
            other => panic!("expected Connected, got {other:?}"),
        };

        // Quiet but alive: a short wait times out.
        assert_eq!(client.recv_within(Duration::from_millis(50)), Err(RecvError::Timeout));

        // Messages still come through as Ok.
        host.send(conn, &Message::Welcome { instance: InstanceId(1) }).unwrap();
        match client.recv_within(TIMEOUT) {
            Ok(Message::Welcome { instance }) => assert_eq!(instance, InstanceId(1)),
            other => panic!("expected Welcome, got {other:?}"),
        }

        // Gone for good: the host hangs up, and (with no reconnect
        // policy) the client reports Disconnected, not Timeout.
        host.disconnect(conn);
        assert_eq!(client.recv_within(TIMEOUT), Err(RecvError::Disconnected));
        // And it keeps saying so without waiting out the timeout.
        let t0 = Instant::now();
        assert_eq!(client.recv_within(TIMEOUT), Err(RecvError::Disconnected));
        assert!(t0.elapsed() < Duration::from_secs(1));
    }

    /// Satellite regression: a wedged socket write (peer never reads)
    /// must not block later sends or `close`. The old `TcpClient::send`
    /// held the stream lock across a blocking `write_all`, so one big
    /// write into a full socket buffer pinned the lock and wedged every
    /// later `send` (even a tiny `Ping`) and `close` indefinitely.
    #[test]
    fn wedged_client_write_does_not_block_ping_or_close() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpClient::connect(addr).unwrap();
        let (peer, _) = listener.accept().unwrap();

        // Overrun the kernel socket buffers so the writer thread wedges
        // inside `write_all`, while staying below the outbox capacity so
        // `send` itself keeps succeeding (frames queue behind the wedge).
        let blob = big_payload_msg(256);
        for _ in 0..48 {
            client.send(&blob).unwrap();
        }

        // A liveness probe behind the wedged write must enqueue without
        // blocking on the socket.
        let t0 = Instant::now();
        client.send(&Message::Ping { nonce: 7 }).unwrap();
        let ping_elapsed = t0.elapsed();
        assert!(ping_elapsed < Duration::from_millis(200), "Ping send took {ping_elapsed:?}");

        // close() waits at most the flush timeout for the (never
        // draining) backlog, then tears the socket down regardless.
        let t1 = Instant::now();
        client.close();
        let close_elapsed = t1.elapsed();
        assert!(
            close_elapsed < CLIENT_FLUSH_TIMEOUT + Duration::from_secs(2),
            "close took {close_elapsed:?}"
        );
        drop(peer);
    }

    /// Shutdown regression: a host bound to the wildcard address must
    /// still be able to wake (and join) its accept loop on drop.
    #[test]
    fn drop_unblocks_accept_loop_on_wildcard_bind() {
        let host = TcpHost::bind("0.0.0.0:0").unwrap();
        let t0 = Instant::now();
        drop(host);
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "dropping a wildcard-bound host hung for {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn send_batch_reports_dead_connections() {
        let host = TcpHost::bind("127.0.0.1:0").unwrap();
        let client = TcpClient::connect(host.local_addr()).unwrap();
        let conn = match host.events().recv_timeout(TIMEOUT).unwrap() {
            NetEvent::Connected(c) => c,
            other => panic!("expected Connected, got {other:?}"),
        };
        client.close();
        match host.events().recv_timeout(TIMEOUT).unwrap() {
            NetEvent::Disconnected(c) => assert_eq!(c, conn),
            other => panic!("expected Disconnected, got {other:?}"),
        }
        let failed = host.send_batch(&[
            (
                conn,
                codec::frame_message_shared(&Message::CommandDelivery {
                    from: InstanceId(1),
                    command: "x".into(),
                    payload: Vec::new(),
                }),
            ),
            (
                conn,
                codec::frame_message_shared(&Message::CoSendCommand {
                    to: Target::Broadcast,
                    command: "y".into(),
                    payload: Vec::new(),
                }),
            ),
        ]);
        assert_eq!(failed, vec![conn]);
        assert_eq!(host.stats().frames_dropped, 2);
    }

    /// The pool really is fixed-size: traffic over many connections with
    /// `io_threads: 2` flows correctly (round-robin assignment puts
    /// neighbours on different poll threads).
    #[test]
    fn small_pool_carries_many_connections() {
        let config = TcpHostConfig { io_threads: 2, ..TcpHostConfig::default() };
        let host = TcpHost::bind_with_config("127.0.0.1:0", config).unwrap();
        let clients: Vec<TcpClient> =
            (0..8).map(|_| TcpClient::connect(host.local_addr()).unwrap()).collect();
        let mut conns = Vec::new();
        for _ in 0..clients.len() {
            match host.events().recv_timeout(TIMEOUT).unwrap() {
                NetEvent::Connected(c) => conns.push(c),
                other => panic!("expected Connected, got {other:?}"),
            }
        }
        for (i, conn) in conns.iter().enumerate() {
            host.send(*conn, &Message::Welcome { instance: InstanceId(i as u64 + 1) }).unwrap();
        }
        // Each client got exactly its own frame.
        let mut seen = Vec::new();
        for client in &clients {
            match client.recv_timeout(TIMEOUT) {
                Some(Message::Welcome { instance }) => seen.push(instance.0),
                other => panic!("expected Welcome, got {other:?}"),
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (1..=8).collect::<Vec<u64>>());
        assert_eq!(host.stats().active_connections, 8);
    }
}
