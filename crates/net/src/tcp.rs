//! Real TCP transport: length-prefixed COSOFT frames over `std::net`
//! sockets, thread-per-connection, delivered through crossbeam channels.
//!
//! The simulated network ([`crate::sim`]) carries all benchmarks; this
//! transport exists so the same server/client logic also runs over real
//! sockets (integration tests and the runnable examples use it).

use std::collections::HashMap;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use cosoft_wire::{codec, Message};
use parking_lot::Mutex;

/// Identifier of one accepted connection on a [`TcpHost`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u64);

/// Event surfaced by a [`TcpHost`].
#[derive(Debug)]
pub enum NetEvent {
    /// A client connected.
    Connected(ConnId),
    /// A complete message arrived from a client.
    Message(ConnId, Message),
    /// A client disconnected (cleanly or on error).
    Disconnected(ConnId),
}

/// Accepting side of the TCP transport (used by the COSOFT server).
///
/// Each accepted connection gets a reader thread that decodes frames into
/// the shared event channel; writes go through a per-connection mutex.
pub struct TcpHost {
    local_addr: SocketAddr,
    events: Receiver<NetEvent>,
    writers: Arc<Mutex<HashMap<ConnId, TcpStream>>>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for TcpHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpHost").field("local_addr", &self.local_addr).finish()
    }
}

impl TcpHost {
    /// Binds a listener (use port 0 for an ephemeral port) and starts the
    /// accept loop.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: &str) -> io::Result<TcpHost> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let (tx, rx) = unbounded();
        let writers: Arc<Mutex<HashMap<ConnId, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let next_id = Arc::new(AtomicU64::new(1));

        let accept_writers = writers.clone();
        let accept_shutdown = shutdown.clone();
        let accept_thread = std::thread::Builder::new()
            .name("cosoft-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let id = ConnId(next_id.fetch_add(1, Ordering::SeqCst));
                    stream.set_nodelay(true).ok();
                    let reader = match stream.try_clone() {
                        Ok(r) => r,
                        Err(_) => continue,
                    };
                    accept_writers.lock().insert(id, stream);
                    if tx.send(NetEvent::Connected(id)).is_err() {
                        break;
                    }
                    let conn_tx = tx.clone();
                    let conn_writers = accept_writers.clone();
                    std::thread::Builder::new()
                        .name(format!("cosoft-conn-{}", id.0))
                        .spawn(move || {
                            let mut reader = BufReader::new(reader);
                            loop {
                                match codec::read_frame(&mut reader) {
                                    Ok(Some(msg)) => {
                                        if conn_tx.send(NetEvent::Message(id, msg)).is_err() {
                                            break;
                                        }
                                    }
                                    Ok(None) | Err(_) => break,
                                }
                            }
                            conn_writers.lock().remove(&id);
                            let _ = conn_tx.send(NetEvent::Disconnected(id));
                        })
                        .expect("spawn connection thread");
                }
            })
            .expect("spawn accept thread");

        Ok(TcpHost { local_addr, events: rx, writers, shutdown, accept_thread: Some(accept_thread) })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Receiver of connection events.
    pub fn events(&self) -> &Receiver<NetEvent> {
        &self.events
    }

    /// Sends a message to one connection.
    ///
    /// # Errors
    ///
    /// `NotConnected` if the connection is gone; otherwise propagates
    /// socket write errors.
    pub fn send(&self, conn: ConnId, msg: &Message) -> io::Result<()> {
        let frame = codec::frame_message(msg);
        let mut writers = self.writers.lock();
        match writers.get_mut(&conn) {
            Some(stream) => stream.write_all(&frame),
            None => Err(io::Error::new(io::ErrorKind::NotConnected, "connection closed")),
        }
    }

    /// Closes one connection; its reader thread will surface a
    /// [`NetEvent::Disconnected`].
    pub fn disconnect(&self, conn: ConnId) {
        if let Some(stream) = self.writers.lock().remove(&conn) {
            stream.shutdown(std::net::Shutdown::Both).ok();
        }
    }
}

impl Drop for TcpHost {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(100));
        for (_, stream) in self.writers.lock().drain() {
            stream.shutdown(std::net::Shutdown::Both).ok();
        }
        if let Some(h) = self.accept_thread.take() {
            h.join().ok();
        }
    }
}

/// Connecting side of the TCP transport (used by application instances).
pub struct TcpClient {
    stream: Mutex<TcpStream>,
    incoming: Receiver<Message>,
    _reader: JoinHandle<()>,
}

impl std::fmt::Debug for TcpClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpClient").finish_non_exhaustive()
    }
}

impl TcpClient {
    /// Connects to a [`TcpHost`] and starts the reader thread.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: SocketAddr) -> io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader_stream = stream.try_clone()?;
        let (tx, rx): (Sender<Message>, Receiver<Message>) = unbounded();
        let reader = std::thread::Builder::new()
            .name("cosoft-client-reader".into())
            .spawn(move || {
                let mut reader = BufReader::new(reader_stream);
                while let Ok(Some(msg)) = codec::read_frame(&mut reader) {
                    if tx.send(msg).is_err() {
                        break;
                    }
                }
            })
            .expect("spawn client reader");
        Ok(TcpClient { stream: Mutex::new(stream), incoming: rx, _reader: reader })
    }

    /// Sends a message to the server.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn send(&self, msg: &Message) -> io::Result<()> {
        self.stream.lock().write_all(&codec::frame_message(msg))
    }

    /// Receives the next message, blocking up to `timeout`.
    ///
    /// Returns `None` on timeout or when the connection closed.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Message> {
        self.incoming.recv_timeout(timeout).ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Message> {
        self.incoming.try_recv().ok()
    }

    /// Receiver handle for select-style integration.
    pub fn incoming(&self) -> &Receiver<Message> {
        &self.incoming
    }

    /// Shuts the connection down; the server sees a disconnect.
    pub fn close(&self) {
        self.stream.lock().shutdown(std::net::Shutdown::Both).ok();
    }
}

impl Drop for TcpClient {
    fn drop(&mut self) {
        // The reader thread holds a cloned file descriptor; an explicit
        // shutdown is required so dropping the client actually closes the
        // connection (and unblocks the reader).
        self.stream.lock().shutdown(std::net::Shutdown::Both).ok();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosoft_wire::{InstanceId, UserId};

    const TIMEOUT: Duration = Duration::from_secs(5);

    #[test]
    fn round_trip_over_real_sockets() {
        let host = TcpHost::bind("127.0.0.1:0").unwrap();
        let client = TcpClient::connect(host.local_addr()).unwrap();

        let conn = match host.events().recv_timeout(TIMEOUT).unwrap() {
            NetEvent::Connected(c) => c,
            other => panic!("expected Connected, got {other:?}"),
        };

        client
            .send(&Message::Register {
                user: UserId(7),
                host: "ws1".into(),
                app_name: "demo".into(),
            })
            .unwrap();
        match host.events().recv_timeout(TIMEOUT).unwrap() {
            NetEvent::Message(c, Message::Register { user, .. }) => {
                assert_eq!(c, conn);
                assert_eq!(user, UserId(7));
            }
            other => panic!("expected Register, got {other:?}"),
        }

        host.send(conn, &Message::Welcome { instance: InstanceId(3) }).unwrap();
        match client.recv_timeout(TIMEOUT).unwrap() {
            Message::Welcome { instance } => assert_eq!(instance, InstanceId(3)),
            other => panic!("expected Welcome, got {other:?}"),
        }
    }

    #[test]
    fn disconnect_is_surfaced() {
        let host = TcpHost::bind("127.0.0.1:0").unwrap();
        let client = TcpClient::connect(host.local_addr()).unwrap();
        let conn = match host.events().recv_timeout(TIMEOUT).unwrap() {
            NetEvent::Connected(c) => c,
            other => panic!("expected Connected, got {other:?}"),
        };
        client.close();
        match host.events().recv_timeout(TIMEOUT).unwrap() {
            NetEvent::Disconnected(c) => assert_eq!(c, conn),
            other => panic!("expected Disconnected, got {other:?}"),
        }
        assert!(host.send(conn, &Message::QueryInstances).is_err());
    }

    #[test]
    fn multiple_clients_multiplex() {
        let host = TcpHost::bind("127.0.0.1:0").unwrap();
        let c1 = TcpClient::connect(host.local_addr()).unwrap();
        let c2 = TcpClient::connect(host.local_addr()).unwrap();
        let mut conns = Vec::new();
        for _ in 0..2 {
            match host.events().recv_timeout(TIMEOUT).unwrap() {
                NetEvent::Connected(c) => conns.push(c),
                other => panic!("expected Connected, got {other:?}"),
            }
        }
        c1.send(&Message::QueryInstances).unwrap();
        c2.send(&Message::Deregister).unwrap();
        let mut got = Vec::new();
        for _ in 0..2 {
            match host.events().recv_timeout(TIMEOUT).unwrap() {
                NetEvent::Message(c, m) => got.push((c, m.kind_name())),
                other => panic!("expected Message, got {other:?}"),
            }
        }
        got.sort();
        assert_eq!(got.len(), 2);
        assert_ne!(got[0].0, got[1].0);
    }
}
