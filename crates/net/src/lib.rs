//! `cosoft-net` — network substrates for the COSOFT reproduction.
//!
//! Two carriers for the same [`cosoft_wire::Message`] protocol:
//!
//! * [`sim`] — a deterministic discrete-event simulated network with a
//!   virtual microsecond clock, seeded latency models and fault injection.
//!   All benchmarks and most tests run here, replacing the paper's 1994
//!   LAN with a reproducible substrate.
//! * [`tcp`] — real sockets (`std::net`, crossbeam channels) so the same
//!   server and client logic also runs end-to-end over TCP. The host is
//!   readiness-driven: a fixed pool of poll threads owns every accepted
//!   socket (the internal `poll` module), so connection count adds
//!   state, not threads.
//!
//! The server and client cores are written sans-I/O (they map an incoming
//! message to outgoing messages) so both carriers drive identical logic.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Deterministic fault injection for the TCP transport (scripted and
/// seeded-random partial writes, short reads, `WouldBlock` storms,
/// injected socket errors). The module is always compiled so the poll
/// pool needs no `cfg` plumbing, but its constructors — and
/// [`tcp::TcpHost::bind_with_faults`] — only exist behind the
/// non-default `fault-injection` cargo feature: a release build has no
/// way to instrument a host.
#[cfg(feature = "fault-injection")]
pub mod fault;
#[cfg(not(feature = "fault-injection"))]
pub(crate) mod fault;
pub(crate) mod poll;
pub mod sim;
pub mod tcp;

#[cfg(feature = "fault-injection")]
pub use fault::{FaultInjector, ReadFault, WriteFault};
pub use sim::{Delivery, FaultPlan, Latency, NetStats, NodeId, SimNet};
pub use tcp::{
    ConnId, NetEvent, RecvError, TcpClient, TcpHost, TcpHostConfig, TcpStats, TcpStatsHandle,
};
