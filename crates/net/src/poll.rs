//! Readiness-driven I/O internals for the TCP host: a fixed pool of
//! poll threads owning nonblocking sockets, per-connection ring-buffer
//! outboxes flushed on writability, incremental frame reassembly on
//! readability, and condvar wakeup tokens replacing every sleep-poll.
//!
//! # Why this is a sweep loop and not epoll
//!
//! The workspace forbids `unsafe` in every crate (the `cosoft-audit`
//! lint enforces it) and the build environment carries no FFI crates, so
//! raw `epoll`/`kqueue` is out of reach. The layer therefore has the
//! *shape* of a mio-style poller — one thread owns N sockets, writes are
//! buffered in ring outboxes and flushed on writability, a wake token
//! lets other threads signal the loop — but readiness is discovered by
//! adaptive nonblocking sweeps: each connection is read-probed on a
//! per-connection backoff schedule, and the loop parks on its waker with
//! an escalating timeout whenever a sweep makes no progress. Swapping
//! the sweep for a real `Poll::poll` is a local change to [`PollThread`];
//! nothing above this module would notice.
//!
//! The thread count is fixed at bind time by the host config's
//! `io_threads` — connection count no longer adds threads.

use std::collections::{HashMap, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

use bytes::Bytes;
use cosoft_wire::{codec, Message};
use crossbeam::channel::{Receiver, Sender, TryRecvError};
use parking_lot::Mutex;

use crate::fault::{FaultInjector, ReadDecision, WriteDecision};
use crate::tcp::{ConnId, Counters, NetEvent};

/// Most segments gathered into one vectored write (IOV_MAX headroom).
const MAX_IOV: usize = 256;

/// Most bytes read from one connection per sweep, so a firehose peer
/// cannot starve its neighbours on the same poll thread.
const MAX_READ_PER_SWEEP: usize = 256 * 1024;

/// Shortest park when a sweep made progress recently.
const MIN_PARK: Duration = Duration::from_micros(200);

/// Longest park between sweeps on a fully idle poll thread.
const MAX_PARK: Duration = Duration::from_millis(2);

/// Most consecutive sweeps a quiet connection skips between read
/// probes. Worst-case added read latency is `MAX_SKIP × MAX_PARK` plus
/// sweep time; any traffic in either direction resets the backoff.
const MAX_SKIP: u32 = 4;

// --------------------------------------------------------------------------
// wakeup primitives
// --------------------------------------------------------------------------

/// Generation-counted condvar: waiters capture the generation, check
/// their condition, and sleep only if no notification happened in
/// between — the classic lost-wakeup-free handshake. Replaces the 1 ms
/// `thread::sleep` poll loops the thread-per-connection transport used
/// for backpressure and flush waiting.
#[derive(Debug, Default)]
pub(crate) struct Gate {
    generation: StdMutex<u64>,
    cv: Condvar,
}

impl Gate {
    /// Current notification generation; capture before checking the
    /// awaited condition.
    pub(crate) fn generation(&self) -> u64 {
        *self.generation.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Bumps the generation and wakes every waiter.
    pub(crate) fn notify(&self) {
        *self.generation.lock().unwrap_or_else(|e| e.into_inner()) += 1;
        self.cv.notify_all();
    }

    /// Sleeps until notified past `seen` or `timeout` elapses. Returns
    /// immediately if a notification already happened after `seen` was
    /// captured.
    pub(crate) fn wait(&self, seen: u64, timeout: Duration) {
        let guard = self.generation.lock().unwrap_or_else(|e| e.into_inner());
        if *guard != seen {
            return;
        }
        let _ = self.cv.wait_timeout(guard, timeout);
    }
}

/// Wake token for one poll thread: `wake` is cheap, latches, and never
/// blocks; `park` sleeps until woken or the timeout elapses.
#[derive(Debug, Default)]
pub(crate) struct PollWaker {
    woken: StdMutex<bool>,
    cv: Condvar,
}

impl PollWaker {
    /// Signals the poll thread; latched, so a wake during a sweep makes
    /// the following park return immediately.
    pub(crate) fn wake(&self) {
        *self.woken.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.cv.notify_one();
    }

    /// Parks until woken or `timeout`; consumes the latch.
    pub(crate) fn park(&self, timeout: Duration) {
        let mut guard = self.woken.lock().unwrap_or_else(|e| e.into_inner());
        if !*guard {
            let (g, _) = self.cv.wait_timeout(guard, timeout).unwrap_or_else(|e| e.into_inner());
            guard = g;
        }
        *guard = false;
    }
}

// --------------------------------------------------------------------------
// outbox
// --------------------------------------------------------------------------

/// One enqueued write: whole pre-encoded frames (cheap [`Bytes`] handles
/// shared with every other connection the same frame fans out to) plus
/// frame/byte totals for the counters and the byte backpressure.
#[derive(Debug)]
pub(crate) struct OutBatch {
    /// Whole encoded frames, flushed with vectored writes — never
    /// concatenated into a fresh allocation.
    pub(crate) segments: Vec<Bytes>,
    /// Frames across `segments`.
    pub(crate) frames: u64,
    /// Total encoded length across `segments`.
    pub(crate) bytes: usize,
}

/// Per-connection ring buffer of pending writes. The router thread
/// appends under the lock; the owning poll thread flushes from the head
/// on writability, tracking partial progress so a short `writev` never
/// re-sends bytes.
#[derive(Debug, Default)]
pub(crate) struct Outbox {
    /// Queued batches, oldest first.
    pub(crate) batches: VecDeque<OutBatch>,
    /// Index of the first unwritten segment of the front batch.
    head_seg: usize,
    /// Bytes of that segment already written.
    head_off: usize,
    /// Set at teardown; enqueues observing it fail with `NotConnected`
    /// instead of waiting out their timeout.
    pub(crate) closed: bool,
}

impl Outbox {
    /// Bytes of the front batch already on the wire.
    fn front_written(&self) -> usize {
        let Some(front) = self.batches.front() else { return 0 };
        front.segments.iter().take(self.head_seg).map(Bytes::len).sum::<usize>() + self.head_off
    }
}

/// Handles shared between the host (enqueue/evict/stats) and the poll
/// thread that owns the connection's socket.
pub(crate) struct ConnShared {
    /// The outbound ring buffer.
    pub(crate) outbox: Arc<Mutex<Outbox>>,
    /// Unwritten outbound bytes; the backpressure budget is accounted
    /// against this (reserved at enqueue, released as bytes hit the
    /// socket).
    pub(crate) queued_bytes: Arc<AtomicUsize>,
    /// Signaled whenever the poll thread drains bytes or tears the
    /// connection down, waking blocked enqueuers.
    pub(crate) gate: Arc<Gate>,
    /// Duplicate handle used to shut the socket down from outside the
    /// poll thread (eviction, explicit disconnect, host drop).
    pub(crate) control: TcpStream,
    /// Index of the owning poll thread in the host's pool.
    pub(crate) thread: usize,
}

/// Connection registry shared by the host handle and the poll pool.
pub(crate) type ConnMap = Arc<Mutex<HashMap<ConnId, ConnShared>>>;

// --------------------------------------------------------------------------
// frame reassembly
// --------------------------------------------------------------------------

/// Incremental `u32-le length ‖ body` reassembler for nonblocking
/// reads: bytes go in as they arrive, complete messages come out.
#[derive(Debug, Default)]
struct FrameReader {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameReader {
    fn push(&mut self, data: &[u8]) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > 64 * 1024 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(data);
    }

    /// Next complete message, `Ok(None)` if more bytes are needed, an
    /// error on an oversized or malformed frame (the connection dies).
    fn next(&mut self) -> io::Result<Option<Message>> {
        let rest = self.buf.get(self.pos..).unwrap_or(&[]);
        let [b0, b1, b2, b3, ..] = rest else {
            return Ok(None);
        };
        let len = u32::from_le_bytes([*b0, *b1, *b2, *b3]) as u64;
        if len > codec::MAX_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds MAX_LEN"),
            ));
        }
        let len = len as usize;
        let Some(body) = rest.get(4..4 + len) else {
            return Ok(None);
        };
        let msg = codec::decode_message(body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        self.pos += 4 + len;
        Ok(Some(msg))
    }
}

// --------------------------------------------------------------------------
// poll thread
// --------------------------------------------------------------------------

/// Control messages from the host to one poll thread.
pub(crate) enum Cmd {
    /// Adopt a freshly accepted nonblocking socket.
    Register(ConnId, TcpStream, Arc<Mutex<Outbox>>, Arc<AtomicUsize>, Arc<Gate>),
    /// Tear one connection down (eviction or explicit disconnect) and
    /// surface its `Disconnected` event.
    Close(ConnId),
    /// Tear everything down and exit.
    Shutdown,
}

/// Per-connection state owned by its poll thread.
struct PollConn {
    stream: TcpStream,
    outbox: Arc<Mutex<Outbox>>,
    queued_bytes: Arc<AtomicUsize>,
    gate: Arc<Gate>,
    frames: FrameReader,
    /// Sweeps left before the next read probe.
    skip: u32,
    /// Current read-backoff ceiling; doubles while the connection stays
    /// quiet, resets to 0 on any traffic.
    skip_limit: u32,
    /// When the connection must have produced its first complete frame;
    /// `None` once it has (or when the host runs without a handshake
    /// deadline). Expiry tears the connection down, so a dialer that
    /// never speaks the protocol cannot hold a socket open forever.
    handshake_deadline: Option<Instant>,
}

/// One thread of the readiness pool: owns its connections' sockets,
/// flushes outboxes on writability, reassembles inbound frames, and
/// parks on its waker between unproductive sweeps.
pub(crate) struct PollThread {
    cmds: Receiver<Cmd>,
    waker: Arc<PollWaker>,
    events: Sender<NetEvent>,
    conns_shared: ConnMap,
    counters: Arc<Counters>,
    /// Freshly registered connections must produce a first complete
    /// frame within this long; `None` disables the deadline.
    handshake_timeout: Option<Duration>,
    /// Fault injector for chaos tests; `None` (the only possibility
    /// without the `fault-injection` feature) means every I/O operation
    /// passes straight through to the kernel.
    faults: Option<Arc<FaultInjector>>,
    conns: HashMap<ConnId, PollConn>,
}

impl PollThread {
    pub(crate) fn new(
        cmds: Receiver<Cmd>,
        waker: Arc<PollWaker>,
        events: Sender<NetEvent>,
        conns_shared: ConnMap,
        counters: Arc<Counters>,
        handshake_timeout: Option<Duration>,
        faults: Option<Arc<FaultInjector>>,
    ) -> PollThread {
        PollThread {
            cmds,
            waker,
            events,
            conns_shared,
            counters,
            handshake_timeout,
            faults,
            conns: HashMap::new(),
        }
    }

    /// The loop. Exits on `Cmd::Shutdown` or when the host drops its
    /// command sender.
    pub(crate) fn run(mut self) {
        let mut scratch = vec![0u8; 64 * 1024];
        let mut park = MIN_PARK;
        loop {
            loop {
                match self.cmds.try_recv() {
                    Ok(Cmd::Register(id, stream, outbox, queued_bytes, gate)) => {
                        self.conns.insert(
                            id,
                            PollConn {
                                stream,
                                outbox,
                                queued_bytes,
                                gate,
                                frames: FrameReader::default(),
                                skip: 0,
                                skip_limit: 0,
                                handshake_deadline: self
                                    .handshake_timeout
                                    .map(|t| Instant::now() + t),
                            },
                        );
                    }
                    Ok(Cmd::Close(id)) => self.teardown(id),
                    Ok(Cmd::Shutdown) | Err(TryRecvError::Disconnected) => {
                        let ids: Vec<ConnId> = self.conns.keys().copied().collect();
                        for id in ids {
                            self.teardown(id);
                        }
                        return;
                    }
                    Err(TryRecvError::Empty) => break,
                }
            }

            let mut progressed = false;
            let ids: Vec<ConnId> = self.conns.keys().copied().collect();
            for id in ids {
                match self.sweep_one(id, &mut scratch) {
                    Ok(p) => progressed |= p,
                    Err(_) => {
                        self.teardown(id);
                        progressed = true;
                    }
                }
            }

            if progressed {
                park = MIN_PARK;
                continue;
            }
            self.waker.park(park);
            park = (park * 2).min(MAX_PARK);
        }
    }

    /// Write phase then (backoff-gated) read phase for one connection.
    /// An `Err` means the connection is dead and must be torn down. A
    /// connection missing from the live map (torn down earlier in the
    /// same sweep pass) is counted in `stale_sweeps` and skipped rather
    /// than treated as a poll-thread invariant.
    fn sweep_one(&mut self, id: ConnId, scratch: &mut [u8]) -> io::Result<bool> {
        let Some(conn) = self.conns.get_mut(&id) else {
            self.counters.stale_sweeps.fetch_add(1, Ordering::Relaxed);
            return Ok(false);
        };
        if let Some(deadline) = conn.handshake_deadline {
            if Instant::now() >= deadline {
                self.counters.handshake_timeouts.fetch_add(1, Ordering::Relaxed);
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "no complete frame within the handshake deadline",
                ));
            }
        }
        let faults = self.faults.as_deref();
        let mut progressed = false;
        let wrote = Self::flush(conn, id, &self.counters, faults)?;
        if wrote {
            progressed = true;
            // A write usually provokes a reply; probe eagerly again.
            conn.skip = 0;
            conn.skip_limit = 0;
        }
        let due = if conn.skip > 0 {
            conn.skip -= 1;
            false
        } else {
            true
        };
        if due {
            let read_any =
                Self::read_ready(conn, id, &self.counters, &self.events, scratch, faults)?;
            if read_any {
                progressed = true;
                conn.skip_limit = 0;
            } else {
                conn.skip_limit = (conn.skip_limit * 2 + 1).min(MAX_SKIP);
            }
            conn.skip = conn.skip_limit;
        }
        Ok(progressed)
    }

    /// Flushes as much of the outbox as the socket accepts with vectored
    /// writes, releasing backpressure bytes and signaling the gate.
    /// Returns whether any bytes moved. With a fault injector attached,
    /// every write attempt first consults it: the gather may be cut
    /// short (partial write), skipped for a sweep (`WouldBlock`), or
    /// turned into a connection-fatal error.
    fn flush(
        conn: &mut PollConn,
        id: ConnId,
        counters: &Counters,
        faults: Option<&FaultInjector>,
    ) -> io::Result<bool> {
        let mut wrote_any = false;
        loop {
            // audit: lock-across-write — per-connection outbox lock held over the nonblocking write so head accounting stays atomic with the bytes the socket took; only enqueuers contend
            let mut ob = conn.outbox.lock();
            if ob.batches.is_empty() {
                return Ok(wrote_any);
            }
            let limit = match faults.map_or(WriteDecision::Pass, |f| f.on_write(id)) {
                WriteDecision::Pass => usize::MAX,
                WriteDecision::Truncate(n) => n,
                WriteDecision::Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Ok(wrote_any);
                }
                WriteDecision::Err(e) => return Err(e),
            };
            let n = {
                let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(MAX_IOV);
                let mut gathered = 0usize;
                'gather: for (bi, batch) in ob.batches.iter().enumerate() {
                    let first_seg = if bi == 0 { ob.head_seg } else { 0 };
                    for (si, seg) in batch.segments.iter().enumerate().skip(first_seg) {
                        let off = if bi == 0 && si == ob.head_seg { ob.head_off } else { 0 };
                        let avail = seg.get(off..).unwrap_or(&[]);
                        let take = avail.len().min(limit - gathered);
                        slices.push(IoSlice::new(avail.get(..take).unwrap_or(avail)));
                        gathered += take;
                        if gathered >= limit || slices.len() >= MAX_IOV {
                            break 'gather;
                        }
                    }
                }
                match conn.stream.write_vectored(&slices) {
                    Ok(0) => {
                        return Err(io::Error::new(
                            io::ErrorKind::WriteZero,
                            "socket write returned zero",
                        ));
                    }
                    Ok(n) => n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(wrote_any),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            wrote_any = true;
            // Advance the head past the written bytes; count batches as
            // they complete.
            let mut remaining = n;
            let mut batches_touched = 1u64;
            while remaining > 0 {
                let (seg_len, seg_count, batch_frames) = {
                    // The socket cannot have taken more bytes than were
                    // queued; if the accounting ever disagrees, drop the
                    // connection instead of the whole poll thread.
                    let Some(batch) = ob.batches.front() else {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "outbox accounting underflow: wrote past queued batches",
                        ));
                    };
                    let Some(seg) = batch.segments.get(ob.head_seg) else {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "outbox accounting underflow: head segment out of range",
                        ));
                    };
                    (seg.len(), batch.segments.len(), batch.frames)
                };
                let take = remaining.min(seg_len - ob.head_off);
                ob.head_off += take;
                remaining -= take;
                if ob.head_off == seg_len {
                    ob.head_seg += 1;
                    ob.head_off = 0;
                    if ob.head_seg == seg_count {
                        counters.frames_out.fetch_add(batch_frames, Ordering::Relaxed);
                        ob.batches.pop_front();
                        ob.head_seg = 0;
                        if remaining > 0 {
                            batches_touched += 1;
                        }
                    }
                }
            }
            drop(ob);
            counters.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
            if batches_touched > 1 {
                counters.coalesced_writes.fetch_add(1, Ordering::Relaxed);
            }
            conn.queued_bytes.fetch_sub(n, Ordering::AcqRel);
            conn.gate.notify();
        }
    }

    /// Reads until `WouldBlock` (bounded per sweep), pushing complete
    /// messages into the event channel. Returns whether bytes arrived;
    /// `Err` on EOF, transport error, or a malformed frame. With a
    /// fault injector attached, every read attempt first consults it:
    /// the read buffer may be shortened (forcing incremental frame
    /// reassembly), the probe skipped (`WouldBlock`), or the read turned
    /// into a connection-fatal error.
    fn read_ready(
        conn: &mut PollConn,
        id: ConnId,
        counters: &Counters,
        events: &Sender<NetEvent>,
        scratch: &mut [u8],
        faults: Option<&FaultInjector>,
    ) -> io::Result<bool> {
        let mut read_any = false;
        let mut budget = MAX_READ_PER_SWEEP;
        loop {
            let cap = match faults.map_or(ReadDecision::Pass, |f| f.on_read(id)) {
                ReadDecision::Pass => scratch.len(),
                ReadDecision::Short(n) => n.min(scratch.len()),
                ReadDecision::Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Ok(read_any);
                }
                ReadDecision::Err(e) => return Err(e),
            };
            let buf = scratch.get_mut(..cap).unwrap_or(&mut []);
            let cap = buf.len();
            let n = match conn.stream.read(buf) {
                Ok(0) => {
                    return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed"));
                }
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(read_any),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            read_any = true;
            counters.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
            // read(2) returns at most buf.len() bytes, so the fallback
            // slice is unreachable.
            conn.frames.push(scratch.get(..n).unwrap_or(&[]));
            while let Some(msg) = conn.frames.next()? {
                counters.frames_in.fetch_add(1, Ordering::Relaxed);
                // First complete frame: the peer speaks the protocol,
                // the handshake deadline (if any) is met.
                conn.handshake_deadline = None;
                // Host gone; the shutdown command will arrive shortly.
                let _ = events.send(NetEvent::Message(id, msg));
            }
            budget = budget.saturating_sub(n);
            if budget == 0 || n < cap {
                // Short read: the socket is (almost certainly) drained;
                // anything left is picked up next sweep.
                return Ok(read_any);
            }
        }
    }

    /// Single teardown path: deregisters the connection everywhere,
    /// counts abandoned frames, releases their backpressure bytes,
    /// wakes blocked enqueuers, and surfaces `Disconnected` exactly
    /// once (commands for already-gone connections are ignored).
    fn teardown(&mut self, id: ConnId) {
        let Some(conn) = self.conns.remove(&id) else { return };
        self.conns_shared.lock().remove(&id);
        let (dropped_frames, dropped_bytes) = {
            let mut ob = conn.outbox.lock();
            ob.closed = true;
            let frames: u64 = ob.batches.iter().map(|b| b.frames).sum();
            let bytes: usize =
                ob.batches.iter().map(|b| b.bytes).sum::<usize>() - ob.front_written();
            ob.batches.clear();
            ob.head_seg = 0;
            ob.head_off = 0;
            (frames, bytes)
        };
        if dropped_frames > 0 {
            self.counters.frames_dropped.fetch_add(dropped_frames, Ordering::Relaxed);
        }
        if dropped_bytes > 0 {
            conn.queued_bytes.fetch_sub(dropped_bytes, Ordering::AcqRel);
        }
        conn.gate.notify();
        let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        let _ = self.events.send(NetEvent::Disconnected(id));
    }
}
