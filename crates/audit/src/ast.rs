//! A real (if small) Rust syntax layer for the audit rules: a lexer,
//! a token-tree builder, and an item-level parser, built by hand
//! because the build environment carries no `syn`.
//!
//! The string-scraping lints this replaces had a structural
//! false-positive class: commented-out code, string literals, and doc
//! examples matched the text scan. Everything in this module starts
//! from a proper lexer — comments and literals are tokenized away
//! before any rule looks at the code — so that class is gone by
//! construction.
//!
//! The model is deliberately shallow where the rules don't need depth:
//!
//! * **Tokens** are exact: strings (including raw and byte strings),
//!   chars vs lifetimes, nested block comments, numbers with suffixes.
//! * **Token trees** group `()`/`[]`/`{}` like `proc_macro2`, with the
//!   source line on every token.
//! * **Items** are parsed for what the rules consume: functions (name,
//!   impl owner, parameter types, body, test-ness), structs with field
//!   types, enums with variants, type aliases, inner attributes, and
//!   `#[cfg(test)]` scoping down `mod` trees.
//! * **Expressions** stay token trees; [`sites_in`] extracts the
//!   syntactic facts the rules match on (method calls with receiver
//!   chains, path calls, macro invocations, index expressions) without
//!   building a full expression grammar.

use std::fmt;

// --------------------------------------------------------------------------
// lexer
// --------------------------------------------------------------------------

/// Delimiter kind of a token group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `( ... )`
    Paren,
    /// `[ ... ]`
    Bracket,
    /// `{ ... }`
    Brace,
}

/// One node of the token forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tree {
    /// An identifier or keyword (including `_` and raw `r#idents`).
    Ident(String, u32),
    /// A single punctuation character (`::` is two `Punct(':')`).
    Punct(char, u32),
    /// A literal: string, char, number — verbatim text including quotes.
    Lit(String, u32),
    /// A lifetime such as `'a` (quote included).
    Lifetime(String, u32),
    /// A delimited group and its contents.
    Group(Delim, Vec<Tree>, u32),
}

impl Tree {
    /// Source line of this token (1-based).
    pub fn line(&self) -> u32 {
        match self {
            Tree::Ident(_, l)
            | Tree::Punct(_, l)
            | Tree::Lit(_, l)
            | Tree::Lifetime(_, l)
            | Tree::Group(_, _, l) => *l,
        }
    }

    /// The identifier text, if this is an identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            Tree::Ident(s, _) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, Tree::Punct(p, _) if *p == c)
    }
}

/// A `//` comment: `(line, text after the slashes)`. Doc comments are
/// included; block comments are discarded by the lexer.
pub type Comment = (u32, String);

/// Lex error with the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer { src: src.as_bytes(), pos: 0, line: 1 }
    }

    fn peek(&self, ahead: usize) -> u8 {
        self.src.get(self.pos + ahead).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek(0);
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        b
    }

    fn take_while(&mut self, pred: impl Fn(u8) -> bool) -> String {
        let start = self.pos;
        while self.pos < self.src.len() && pred(self.peek(0)) {
            self.bump();
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    /// Consumes a string body up to an unescaped `"`.
    fn string_body(&mut self) -> Result<(), ParseError> {
        let start_line = self.line;
        loop {
            match self.bump() {
                0 => {
                    return Err(ParseError {
                        line: start_line,
                        message: "unterminated string literal".into(),
                    })
                }
                b'\\' => {
                    self.bump();
                }
                b'"' => return Ok(()),
                _ => {}
            }
        }
    }

    /// Consumes a raw string body: `hashes` trailing `#`s follow the
    /// closing quote.
    fn raw_string_body(&mut self, hashes: usize) -> Result<(), ParseError> {
        let start_line = self.line;
        loop {
            match self.bump() {
                0 => {
                    return Err(ParseError {
                        line: start_line,
                        message: "unterminated raw string literal".into(),
                    })
                }
                b'"' => {
                    let mut ok = true;
                    for i in 0..hashes {
                        if self.peek(i) != b'#' {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..hashes {
                            self.bump();
                        }
                        return Ok(());
                    }
                }
                _ => {}
            }
        }
    }
}

/// Lexes `src` into a flat token list plus the line comments.
fn lex(src: &str) -> Result<(Vec<Tree>, Vec<Comment>), ParseError> {
    let mut lx = Lexer::new(src);
    let mut out = Vec::new();
    let mut comments = Vec::new();
    while lx.pos < lx.src.len() {
        let line = lx.line;
        let b = lx.peek(0);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                lx.bump();
            }
            b'/' if lx.peek(1) == b'/' => {
                lx.bump();
                lx.bump();
                let text = lx.take_while(|c| c != b'\n');
                comments.push((line, text));
            }
            b'/' if lx.peek(1) == b'*' => {
                lx.bump();
                lx.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match lx.bump() {
                        0 => {
                            return Err(ParseError {
                                line,
                                message: "unterminated block comment".into(),
                            })
                        }
                        b'/' if lx.peek(0) == b'*' => {
                            lx.bump();
                            depth += 1;
                        }
                        b'*' if lx.peek(0) == b'/' => {
                            lx.bump();
                            depth -= 1;
                        }
                        _ => {}
                    }
                }
            }
            b'"' => {
                let start = lx.pos;
                lx.bump();
                lx.string_body()?;
                out.push(Tree::Lit(
                    String::from_utf8_lossy(&lx.src[start..lx.pos]).into_owned(),
                    line,
                ));
            }
            b'\'' => {
                // Char literal or lifetime. A char is 'x' / '\n' / '\'':
                // after the quote, an escape always means char; otherwise
                // it is a char only if a closing quote follows one scalar.
                let start = lx.pos;
                lx.bump();
                let c0 = lx.peek(0);
                if c0 == b'\\' {
                    lx.bump();
                    lx.bump();
                    while lx.peek(0) != b'\'' && lx.peek(0) != 0 {
                        lx.bump(); // \u{...} escapes
                    }
                    lx.bump();
                    out.push(Tree::Lit(
                        String::from_utf8_lossy(&lx.src[start..lx.pos]).into_owned(),
                        line,
                    ));
                } else if !(c0.is_ascii_alphanumeric() || c0 == b'_' || c0 >= 0x80) {
                    // A non-identifier character can only be a char
                    // literal (`'('`, `'{'`, `'"'`), never a lifetime.
                    while lx.peek(0) != b'\'' && lx.peek(0) != 0 {
                        lx.bump();
                    }
                    lx.bump();
                    out.push(Tree::Lit(
                        String::from_utf8_lossy(&lx.src[start..lx.pos]).into_owned(),
                        line,
                    ));
                } else {
                    // Find the extent of the identifier-ish run.
                    let mut n = 0usize;
                    while lx.peek(n).is_ascii_alphanumeric()
                        || lx.peek(n) == b'_'
                        || lx.peek(n) >= 0x80
                    {
                        n += 1;
                    }
                    if lx.peek(n) == b'\'' && n > 0 {
                        for _ in 0..=n {
                            lx.bump();
                        }
                        out.push(Tree::Lit(
                            String::from_utf8_lossy(&lx.src[start..lx.pos]).into_owned(),
                            line,
                        ));
                    } else {
                        let name = lx.take_while(|c| c.is_ascii_alphanumeric() || c == b'_');
                        out.push(Tree::Lifetime(format!("'{name}"), line));
                    }
                }
            }
            b'r' | b'b' if is_raw_or_byte_literal(&lx) => {
                let start = lx.pos;
                if lx.peek(0) == b'b' {
                    lx.bump();
                }
                if lx.peek(0) == b'r' {
                    lx.bump();
                    let mut hashes = 0usize;
                    while lx.peek(0) == b'#' {
                        hashes += 1;
                        lx.bump();
                    }
                    lx.bump(); // opening quote
                    lx.raw_string_body(hashes)?;
                } else {
                    lx.bump(); // opening quote
                    lx.string_body()?;
                }
                out.push(Tree::Lit(
                    String::from_utf8_lossy(&lx.src[start..lx.pos]).into_owned(),
                    line,
                ));
            }
            b'0'..=b'9' => {
                let start = lx.pos;
                lx.take_while(|c| c.is_ascii_alphanumeric() || c == b'_');
                // A fraction part: `.` followed by a digit (not `..`).
                if lx.peek(0) == b'.' && lx.peek(1).is_ascii_digit() {
                    lx.bump();
                    lx.take_while(|c| c.is_ascii_alphanumeric() || c == b'_');
                }
                out.push(Tree::Lit(
                    String::from_utf8_lossy(&lx.src[start..lx.pos]).into_owned(),
                    line,
                ));
            }
            c if c.is_ascii_alphabetic() || c == b'_' || c >= 0x80 => {
                let mut name =
                    lx.take_while(|c| c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80);
                // Raw identifier `r#name` — the `r` was consumed above
                // only if not followed by a quote, so handle `r#` here.
                if name == "r"
                    && lx.peek(0) == b'#'
                    && (lx.peek(1).is_ascii_alphabetic() || lx.peek(1) == b'_')
                {
                    lx.bump();
                    name = lx.take_while(|c| c.is_ascii_alphanumeric() || c == b'_');
                }
                out.push(Tree::Ident(name, line));
            }
            c => {
                lx.bump();
                out.push(Tree::Punct(c as char, line));
            }
        }
    }
    Ok((out, comments))
}

/// Whether the lexer sits on `r"`, `r#`, `b"`, `br"`, or `br#` — a raw
/// or byte string literal rather than an identifier starting with r/b.
fn is_raw_or_byte_literal(lx: &Lexer<'_>) -> bool {
    let (c0, mut i) = (lx.peek(0), 1usize);
    if c0 == b'b' && lx.peek(1) == b'r' {
        i = 2;
    }
    match lx.peek(i) {
        b'"' => true,
        b'#' => {
            // Skip hashes; a quote must follow for this to be a raw string
            // (otherwise it is `r#ident`).
            let mut j = i;
            while lx.peek(j) == b'#' {
                j += 1;
            }
            lx.peek(j) == b'"' && (c0 == b'r' || (c0 == b'b' && i == 2))
        }
        _ => false,
    }
}

/// Builds the token forest from the flat token list.
fn build_trees(flat: Vec<Tree>) -> Result<Vec<Tree>, ParseError> {
    let mut stack: Vec<(Delim, u32, Vec<Tree>)> = Vec::new();
    let mut top: Vec<Tree> = Vec::new();
    for tok in flat {
        match tok {
            Tree::Punct(c @ ('(' | '[' | '{'), line) => {
                let delim = match c {
                    '(' => Delim::Paren,
                    '[' => Delim::Bracket,
                    _ => Delim::Brace,
                };
                stack.push((delim, line, std::mem::take(&mut top)));
            }
            Tree::Punct(c @ (')' | ']' | '}'), line) => {
                let delim = match c {
                    ')' => Delim::Paren,
                    ']' => Delim::Bracket,
                    _ => Delim::Brace,
                };
                let Some((open_delim, open_line, parent)) = stack.pop() else {
                    return Err(ParseError { line, message: format!("unbalanced `{c}`") });
                };
                if open_delim != delim {
                    return Err(ParseError {
                        line,
                        message: format!("mismatched delimiter `{c}` (opened line {open_line})"),
                    });
                }
                let children = std::mem::replace(&mut top, parent);
                top.push(Tree::Group(delim, children, open_line));
            }
            other => top.push(other),
        }
    }
    if let Some((_, line, _)) = stack.pop() {
        return Err(ParseError { line, message: "unclosed delimiter".into() });
    }
    Ok(top)
}

// --------------------------------------------------------------------------
// items
// --------------------------------------------------------------------------

/// A function definition (free, inherent, or trait).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// The `impl`/`trait` self type this function is defined on.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the function is test code: `#[test]`, or anything under
    /// a `#[cfg(test)]` item/mod.
    pub in_test: bool,
    /// `(name, normalized type)` of each named parameter (`self`
    /// excluded; patterns more complex than one identifier are skipped).
    pub params: Vec<(String, String)>,
    /// Body token forest (empty for bodyless trait signatures).
    pub body: Vec<Tree>,
}

/// A struct definition with its named fields.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// `(field, normalized type)` pairs; empty for unit/tuple structs.
    pub fields: Vec<(String, String)>,
}

/// An enum definition.
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// Variant names in declaration order.
    pub variants: Vec<String>,
}

/// One parsed source file.
#[derive(Debug, Clone)]
pub struct AstFile {
    /// Workspace-relative path.
    pub path: String,
    /// Inner attributes (`#![...]`), normalized (e.g. `forbid(unsafe_code)`).
    pub inner_attrs: Vec<String>,
    /// Every function in the file (all nesting levels).
    pub fns: Vec<FnDef>,
    /// Every struct with named fields.
    pub structs: Vec<StructDef>,
    /// Every enum.
    pub enums: Vec<EnumDef>,
    /// `type Alias = Target;` pairs, normalized.
    pub aliases: Vec<(String, String)>,
    /// Inclusive line ranges covered by test code (`#[test]` functions,
    /// `#[cfg(test)]` mods/impls).
    pub test_ranges: Vec<(u32, u32)>,
    /// All `//` comments.
    pub comments: Vec<Comment>,
    /// The whole-file token forest (for raw scans like dispatch arms).
    pub trees: Vec<Tree>,
}

/// Every parsed file of the workspace.
#[derive(Debug, Clone, Default)]
pub struct AstWorkspace {
    /// Parsed files, in input order.
    pub files: Vec<AstFile>,
}

impl AstWorkspace {
    /// Parses `(path, source)` pairs. Files that fail to lex are
    /// reported as errors; the audit treats that as a violation rather
    /// than skipping them silently.
    ///
    /// # Errors
    ///
    /// The paths and lex errors of every unparseable file.
    pub fn parse(sources: &[(String, String)]) -> Result<AstWorkspace, Vec<(String, ParseError)>> {
        let mut files = Vec::new();
        let mut errors = Vec::new();
        for (path, text) in sources {
            match AstFile::parse(path, text) {
                Ok(f) => files.push(f),
                Err(e) => errors.push((path.clone(), e)),
            }
        }
        if errors.is_empty() {
            Ok(AstWorkspace { files })
        } else {
            Err(errors)
        }
    }

    /// The parsed file at `path`, if present.
    pub fn file(&self, path: &str) -> Option<&AstFile> {
        self.files.iter().find(|f| f.path == path)
    }
}

impl AstFile {
    /// Lexes and item-parses one source file.
    ///
    /// # Errors
    ///
    /// Lex-level failures (unterminated literals, unbalanced
    /// delimiters).
    pub fn parse(path: &str, text: &str) -> Result<AstFile, ParseError> {
        let (flat, comments) = lex(text)?;
        let trees = build_trees(flat)?;
        let mut file = AstFile {
            path: path.to_owned(),
            inner_attrs: Vec::new(),
            fns: Vec::new(),
            structs: Vec::new(),
            enums: Vec::new(),
            aliases: Vec::new(),
            test_ranges: Vec::new(),
            comments,
            trees: Vec::new(),
        };
        collect_items(&trees, None, false, &mut file);
        file.trees = trees;
        Ok(file)
    }
}

/// Highest source line appearing in a token forest (0 when empty).
pub fn max_line(trees: &[Tree]) -> u32 {
    trees
        .iter()
        .map(|t| match t {
            Tree::Group(_, inner, line) => max_line(inner).max(*line),
            other => other.line(),
        })
        .max()
        .unwrap_or(0)
}

/// Whether an attribute body (the trees inside `#[...]`) marks test
/// code: `test`, `cfg(test)`, or `cfg(any(test, ...))` — but not
/// `cfg(not(test))`.
fn attr_is_test(attr: &[Tree]) -> bool {
    match attr.first().and_then(Tree::as_ident) {
        Some("test") => true,
        Some("cfg") => match attr.get(1) {
            Some(Tree::Group(Delim::Paren, args, _)) => cfg_mentions_test(args),
            _ => false,
        },
        // `#[tokio::test]`-style: any path ending in `test`.
        Some(_) => {
            attr.iter().rev().find_map(Tree::as_ident) == Some("test")
                && attr.iter().any(|t| t.is_punct(':'))
        }
        None => false,
    }
}

/// `test` positively enabled inside a cfg predicate (`not(...)` does
/// not descend).
fn cfg_mentions_test(args: &[Tree]) -> bool {
    let mut i = 0;
    while i < args.len() {
        match &args[i] {
            Tree::Ident(name, _) if name == "test" => return true,
            Tree::Ident(name, _) if name == "any" || name == "all" => {
                if let Some(Tree::Group(Delim::Paren, inner, _)) = args.get(i + 1) {
                    if cfg_mentions_test(inner) {
                        return true;
                    }
                    i += 1;
                }
            }
            Tree::Ident(name, _) if name == "not" => {
                i += 1; // skip the group — nothing under not() is test
            }
            _ => {}
        }
        i += 1;
    }
    false
}

/// Joins token trees into canonical text: no whitespace except a single
/// space between adjacent word tokens.
pub fn normalize(trees: &[Tree]) -> String {
    let mut out = String::new();
    let mut prev_word = false;
    for t in trees {
        let (text, word) = match t {
            Tree::Ident(s, _) => (s.clone(), true),
            Tree::Lit(s, _) => (s.clone(), true),
            Tree::Lifetime(s, _) => (s.clone(), true),
            Tree::Punct(c, _) => (c.to_string(), false),
            Tree::Group(d, inner, _) => {
                let (open, close) = match d {
                    Delim::Paren => ('(', ')'),
                    Delim::Bracket => ('[', ']'),
                    Delim::Brace => ('{', '}'),
                };
                (format!("{open}{}{close}", normalize(inner)), false)
            }
        };
        if prev_word && word {
            out.push(' ');
        }
        out.push_str(&text);
        prev_word = word;
    }
    out
}

/// Skips a `<...>` generics run starting at `i` (which must point at the
/// `<`); returns the index just past the matching `>`. `->` arrows
/// inside the generics do not close the run.
fn skip_generics(trees: &[Tree], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < trees.len() {
        match &trees[i] {
            Tree::Punct('<', _) => depth += 1,
            Tree::Punct('>', _) => {
                // Part of `->`?
                let is_arrow = i > 0 && trees[i - 1].is_punct('-');
                if !is_arrow {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Recursively collects items from a token forest.
fn collect_items(trees: &[Tree], owner: Option<&str>, in_test: bool, out: &mut AstFile) {
    let mut i = 0usize;
    // Attributes seen since the last item, as raw tree slices.
    let mut pending_attrs: Vec<&[Tree]> = Vec::new();
    while i < trees.len() {
        match &trees[i] {
            // `#[...]` outer attribute / `#![...]` inner attribute.
            Tree::Punct('#', _) => {
                if let Some(Tree::Punct('!', _)) = trees.get(i + 1) {
                    if let Some(Tree::Group(Delim::Bracket, attr, _)) = trees.get(i + 2) {
                        out.inner_attrs.push(normalize(attr));
                        i += 3;
                        continue;
                    }
                }
                if let Some(Tree::Group(Delim::Bracket, attr, _)) = trees.get(i + 1) {
                    pending_attrs.push(attr);
                    i += 2;
                    continue;
                }
                i += 1;
            }
            Tree::Ident(kw, _) if kw == "fn" => {
                let item_test = in_test || pending_attrs.iter().any(|a| attr_is_test(a));
                i = parse_fn(trees, i, owner, item_test, out);
                pending_attrs.clear();
            }
            Tree::Ident(kw, _) if kw == "impl" || kw == "trait" => {
                let item_test = in_test || pending_attrs.iter().any(|a| attr_is_test(a));
                pending_attrs.clear();
                let is_trait = kw == "trait";
                // Find the body brace at this level; tokens before it are
                // the header.
                let start = i + 1;
                let mut j = start;
                while j < trees.len() && !matches!(trees[j], Tree::Group(Delim::Brace, ..)) {
                    if trees[j].is_punct('<') {
                        j = skip_generics(trees, j);
                        continue;
                    }
                    if matches!(&trees[j], Tree::Punct(';', _)) {
                        break; // e.g. `trait Marker;` — no body
                    }
                    j += 1;
                }
                if let Some(Tree::Group(Delim::Brace, body, gline)) = trees.get(j) {
                    let header = &trees[start..j];
                    let name = impl_target_name(header, is_trait);
                    if item_test && !in_test {
                        out.test_ranges.push((trees[i].line(), max_line(body).max(*gline)));
                    }
                    collect_items(body, name.as_deref(), item_test, out);
                    i = j + 1;
                } else {
                    i = j + 1;
                }
            }
            Tree::Ident(kw, _) if kw == "mod" => {
                let item_test = in_test || pending_attrs.iter().any(|a| attr_is_test(a));
                pending_attrs.clear();
                if let Some(Tree::Group(Delim::Brace, body, gline)) = trees.get(i + 2) {
                    if item_test && !in_test {
                        out.test_ranges.push((trees[i].line(), max_line(body).max(*gline)));
                    }
                    collect_items(body, None, item_test, out);
                    i += 3;
                } else {
                    i += 2; // `mod name;`
                }
            }
            Tree::Ident(kw, _) if kw == "struct" => {
                let name = trees.get(i + 1).and_then(Tree::as_ident).unwrap_or_default().to_owned();
                let mut j = i + 2;
                while j < trees.len() {
                    if trees[j].is_punct('<') {
                        j = skip_generics(trees, j);
                        continue;
                    }
                    match &trees[j] {
                        Tree::Group(Delim::Brace, fields, _) => {
                            out.structs.push(StructDef {
                                name: name.clone(),
                                fields: parse_fields(fields),
                            });
                            j += 1;
                            break;
                        }
                        Tree::Punct(';', _) => {
                            out.structs.push(StructDef { name: name.clone(), fields: Vec::new() });
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                pending_attrs.clear();
                i = j;
            }
            Tree::Ident(kw, _) if kw == "enum" => {
                let name = trees.get(i + 1).and_then(Tree::as_ident).unwrap_or_default().to_owned();
                let mut j = i + 2;
                while j < trees.len() && !matches!(trees[j], Tree::Group(Delim::Brace, ..)) {
                    if trees[j].is_punct('<') {
                        j = skip_generics(trees, j);
                        continue;
                    }
                    j += 1;
                }
                if let Some(Tree::Group(Delim::Brace, body, _)) = trees.get(j) {
                    out.enums.push(EnumDef { name, variants: parse_variants(body) });
                    i = j + 1;
                } else {
                    i = j;
                }
                pending_attrs.clear();
            }
            Tree::Ident(kw, _) if kw == "type" => {
                // `type Name<...> = Target;`
                let name = trees.get(i + 1).and_then(Tree::as_ident).unwrap_or_default().to_owned();
                let mut j = i + 2;
                while j < trees.len() && !trees[j].is_punct('=') && !trees[j].is_punct(';') {
                    if trees[j].is_punct('<') {
                        j = skip_generics(trees, j);
                        continue;
                    }
                    j += 1;
                }
                if trees.get(j).is_some_and(|t| t.is_punct('=')) {
                    let start = j + 1;
                    let mut k = start;
                    while k < trees.len() && !trees[k].is_punct(';') {
                        k += 1;
                    }
                    if !name.is_empty() {
                        out.aliases.push((name, normalize(&trees[start..k])));
                    }
                    j = k;
                }
                pending_attrs.clear();
                i = j + 1;
            }
            // `macro_rules! name { ... }` and other item-level macros.
            Tree::Ident(_, _) if trees.get(i + 1).is_some_and(|t| t.is_punct('!')) => {
                pending_attrs.clear();
                i += 2;
                // Optional name, then the macro body group.
                while i < trees.len() && !matches!(trees[i], Tree::Group(..)) {
                    i += 1;
                }
                i += 1;
            }
            // Visibility/qualifiers just pass through so the keyword
            // handlers above see `fn`/`struct`/... next.
            Tree::Ident(kw, _)
                if matches!(
                    kw.as_str(),
                    "pub" | "const" | "async" | "unsafe" | "default" | "extern"
                ) =>
            {
                i += 1;
                // `pub(crate)` — skip the restriction group.
                if kw == "pub" {
                    if let Some(Tree::Group(Delim::Paren, ..)) = trees.get(i) {
                        i += 1;
                    }
                }
            }
            Tree::Ident(kw, _) if matches!(kw.as_str(), "use" | "static" | "mod") => {
                pending_attrs.clear();
                while i < trees.len() && !trees[i].is_punct(';') {
                    i += 1;
                }
                i += 1;
            }
            _ => {
                // Expression-position or unknown tokens at item level
                // (e.g. `;`): attributes no longer apply.
                if !matches!(trees[i], Tree::Punct(';', _)) {
                    pending_attrs.clear();
                }
                i += 1;
            }
        }
    }
}

/// The self-type name of an `impl` header (the type after `for` when
/// present, else the first type), or the trait name for `trait` items.
fn impl_target_name(header: &[Tree], is_trait: bool) -> Option<String> {
    if is_trait {
        return header.first().and_then(Tree::as_ident).map(str::to_owned);
    }
    let for_pos = header.iter().position(|t| t.as_ident() == Some("for"));
    let tail = match for_pos {
        Some(p) => &header[p + 1..],
        None => header,
    };
    // Last path segment before generics or `where`.
    let mut name = None;
    let mut i = 0;
    while i < tail.len() {
        match &tail[i] {
            Tree::Punct('<', _) => break,
            Tree::Ident(s, _) if s == "where" => break,
            Tree::Ident(s, _) => name = Some(s.clone()),
            _ => {}
        }
        i += 1;
    }
    name
}

/// Parses `name: Type` fields out of a struct body, skipping
/// attributes and visibility.
fn parse_fields(body: &[Tree]) -> Vec<(String, String)> {
    let mut fields = Vec::new();
    for chunk in split_top_level(body, ',') {
        let mut j = 0;
        // Skip attributes and visibility.
        loop {
            match chunk.get(j) {
                Some(Tree::Punct('#', _)) => j += 2,
                Some(Tree::Ident(kw, _)) if kw == "pub" => {
                    j += 1;
                    if let Some(Tree::Group(Delim::Paren, ..)) = chunk.get(j) {
                        j += 1;
                    }
                }
                _ => break,
            }
        }
        let Some(name) = chunk.get(j).and_then(Tree::as_ident) else { continue };
        if chunk.get(j + 1).is_some_and(|t| t.is_punct(':')) {
            fields.push((name.to_owned(), normalize(&chunk[j + 2..])));
        }
    }
    fields
}

/// Parses variant names out of an enum body.
fn parse_variants(body: &[Tree]) -> Vec<String> {
    let mut variants = Vec::new();
    for chunk in split_top_level(body, ',') {
        let mut j = 0;
        while matches!(chunk.get(j), Some(Tree::Punct('#', _))) {
            j += 2;
        }
        if let Some(name) = chunk.get(j).and_then(Tree::as_ident) {
            if name.chars().next().is_some_and(char::is_uppercase) {
                variants.push(name.to_owned());
            }
        }
    }
    variants
}

/// Splits a token slice on a top-level separator punct.
fn split_top_level(trees: &[Tree], sep: char) -> Vec<&[Tree]> {
    let mut chunks = Vec::new();
    let mut start = 0usize;
    let mut angle = 0i32;
    for (i, t) in trees.iter().enumerate() {
        match t {
            Tree::Punct('<', _) => angle += 1,
            Tree::Punct('>', _) if !(i > 0 && trees[i - 1].is_punct('-')) => {
                angle = (angle - 1).max(0);
            }
            Tree::Punct(c, _) if *c == sep && angle == 0 => {
                chunks.push(&trees[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < trees.len() {
        chunks.push(&trees[start..]);
    }
    chunks
}

/// Parses one `fn` item starting at `trees[i]` (the `fn` keyword);
/// returns the index just past the item.
fn parse_fn(
    trees: &[Tree],
    i: usize,
    owner: Option<&str>,
    in_test: bool,
    out: &mut AstFile,
) -> usize {
    let line = trees[i].line();
    let Some(name) = trees.get(i + 1).and_then(Tree::as_ident) else {
        return i + 1;
    };
    let name = name.to_owned();
    // Skip generics between the name and the parameter list.
    let mut j = i + 2;
    if trees.get(j).is_some_and(|t| t.is_punct('<')) {
        j = skip_generics(trees, j);
    }
    let Some(Tree::Group(Delim::Paren, params_trees, _)) = trees.get(j) else {
        return i + 1;
    };
    let params = parse_params(params_trees);
    // Body: the first brace group before a `;` at this level.
    j += 1;
    let mut body = Vec::new();
    while j < trees.len() {
        match &trees[j] {
            Tree::Punct(';', _) => {
                j += 1;
                break;
            }
            Tree::Group(Delim::Brace, b, _) => {
                body = b.clone();
                j += 1;
                break;
            }
            Tree::Punct('<', _) => {
                j = skip_generics(trees, j);
            }
            _ => j += 1,
        }
    }
    if in_test {
        out.test_ranges.push((line, max_line(&body).max(line)));
    }
    out.fns.push(FnDef { name, owner: owner.map(str::to_owned), line, in_test, params, body });
    j
}

/// Parses `name: Type` parameters (self receivers and pattern
/// parameters are skipped).
fn parse_params(trees: &[Tree]) -> Vec<(String, String)> {
    let mut params = Vec::new();
    for chunk in split_top_level(trees, ',') {
        let mut j = 0;
        if chunk.get(j).and_then(Tree::as_ident) == Some("mut") {
            j += 1;
        }
        let Some(name) = chunk.get(j).and_then(Tree::as_ident) else { continue };
        if name == "self" {
            continue;
        }
        if chunk.get(j + 1).is_some_and(|t| t.is_punct(':')) {
            params.push((name.to_owned(), normalize(&chunk[j + 2..])));
        }
    }
    params
}

// --------------------------------------------------------------------------
// expression-level sites
// --------------------------------------------------------------------------

/// One syntactic fact inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Site {
    /// `recv.name(...)` — `recv` is the trailing identifier chain of the
    /// receiver (empty when the receiver is not a plain path, e.g. a
    /// call result).
    Method {
        /// Method name.
        name: String,
        /// Receiver identifier chain, outermost first (e.g. `["self", "conns"]`).
        recv: Vec<String>,
        /// Source line.
        line: u32,
    },
    /// `a::b::name(...)` or `name(...)`.
    Call {
        /// Full path segments including the function name.
        path: Vec<String>,
        /// Source line.
        line: u32,
    },
    /// `name!(...)` / `name![...]` / `name! {...}`.
    MacroUse {
        /// Macro name.
        name: String,
        /// Source line.
        line: u32,
    },
    /// `expr[...]` — a direct index (or slice-index) expression.
    Index {
        /// Source line.
        line: u32,
    },
}

impl Site {
    /// Source line of the site.
    pub fn line(&self) -> u32 {
        match self {
            Site::Method { line, .. }
            | Site::Call { line, .. }
            | Site::MacroUse { line, .. }
            | Site::Index { line } => *line,
        }
    }
}

/// Keywords that rule out the preceding-identifier form of an index
/// expression (`return [a, b]` is an array literal, not an index).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while", "yield", "_",
];

/// Extracts every [`Site`] from a token forest (recursing into all
/// groups), in source order.
pub fn sites_in(trees: &[Tree]) -> Vec<Site> {
    let mut out = Vec::new();
    walk_sites(trees, true, &mut out);
    out
}

/// Like [`sites_in`], but does not descend into `{ ... }` groups:
/// sites in nested block bodies (loop/if/match arms) are excluded,
/// while call arguments and index expressions are included. Scope-aware
/// scans use this to process one statement at a time and recurse into
/// blocks themselves.
pub fn shallow_sites(trees: &[Tree]) -> Vec<Site> {
    let mut out = Vec::new();
    walk_sites(trees, false, &mut out);
    out
}

fn walk_sites(trees: &[Tree], into_braces: bool, out: &mut Vec<Site>) {
    let mut i = 0usize;
    while i < trees.len() {
        match &trees[i] {
            Tree::Ident(name, line) => {
                // Macro use: `name ! <group>`.
                if trees.get(i + 1).is_some_and(|t| t.is_punct('!'))
                    && matches!(trees.get(i + 2), Some(Tree::Group(..)))
                {
                    out.push(Site::MacroUse { name: name.clone(), line: *line });
                    i += 2; // land on the group; the Group arm recurses
                    continue;
                }
                // Method call: `. name (args)` — the receiver chain is
                // collected backwards over `ident (. ident)*`.
                let after_dot = i > 0 && trees[i - 1].is_punct('.');
                if after_dot && matches!(trees.get(i + 1), Some(Tree::Group(Delim::Paren, ..))) {
                    out.push(Site::Method {
                        name: name.clone(),
                        recv: receiver_chain(trees, i - 1),
                        line: *line,
                    });
                    i += 1; // land on the args group
                    continue;
                }
                // Field-access index: `a.field[i]`.
                if after_dot && matches!(trees.get(i + 1), Some(Tree::Group(Delim::Bracket, ..))) {
                    out.push(Site::Index { line: trees[i + 1].line() });
                    i += 1; // land on the bracket group
                    continue;
                }
                // Path call: `a :: b :: name (args)`.
                if !after_dot {
                    let (path, end) = path_run(trees, i);
                    if !path.is_empty()
                        && matches!(trees.get(end), Some(Tree::Group(Delim::Paren, ..)))
                    {
                        out.push(Site::Call { path, line: *line });
                        i = end; // land on the args group
                        continue;
                    }
                    // Index: `ident [ ... ]` where ident is not a keyword.
                    if path.len() == 1
                        && matches!(trees.get(i + 1), Some(Tree::Group(Delim::Bracket, ..)))
                        && !NON_INDEX_KEYWORDS.contains(&name.as_str())
                    {
                        out.push(Site::Index { line: trees[i + 1].line() });
                        i += 1; // land on the bracket group
                        continue;
                    }
                    i = end.max(i + 1);
                    continue;
                }
                i += 1;
            }
            Tree::Group(_, inner, _) => {
                // Index on a call/index/group result: `foo()[i]`, `a[i][j]`.
                if matches!(trees.get(i + 1), Some(Tree::Group(Delim::Bracket, bline_group, _)) if {
                    let _ = bline_group;
                    true
                }) {
                    // Only (..) and [..] results are indexable expressions;
                    // `#[attr]` is excluded because its previous sibling is
                    // the `#` punct, not a group.
                    if matches!(trees[i], Tree::Group(Delim::Paren | Delim::Bracket, ..)) {
                        out.push(Site::Index { line: trees[i + 1].line() });
                    }
                }
                if into_braces || !matches!(trees[i], Tree::Group(Delim::Brace, ..)) {
                    walk_sites(inner, into_braces, out);
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// Walks backwards from the `.` at `dot` collecting the receiver chain
/// `ident (. ident)*`, outermost identifier first. Returns an empty
/// chain when the receiver is not a plain identifier path.
fn receiver_chain(trees: &[Tree], dot: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut i = dot; // points at a '.'
    loop {
        if i == 0 {
            return Vec::new();
        }
        let prev = &trees[i - 1];
        match prev {
            Tree::Ident(name, _) => {
                chain.push(name.clone());
                if i >= 2 && trees[i - 2].is_punct('.') {
                    i -= 2;
                    continue;
                }
                // A further `ident.` to the left would have been caught;
                // anything else ends the chain cleanly.
                break;
            }
            _ => return Vec::new(), // method on a call result / literal
        }
    }
    chain.reverse();
    chain
}

/// Collects the path run `ident (:: ident)*` starting at `i`; returns
/// the segments and the index just past the run.
fn path_run(trees: &[Tree], i: usize) -> (Vec<String>, usize) {
    let mut path = Vec::new();
    let mut j = i;
    while let Some(name) = trees.get(j).and_then(Tree::as_ident) {
        path.push(name.to_owned());
        if trees.get(j + 1).is_some_and(|t| t.is_punct(':'))
            && trees.get(j + 2).is_some_and(|t| t.is_punct(':'))
            && matches!(trees.get(j + 3), Some(Tree::Ident(..)))
        {
            j += 3;
        } else {
            j += 1;
            break;
        }
    }
    (path, j)
}

/// Splits a block's token forest into statements: at top-level `;`, and
/// after a top-level brace group that ends a block-statement (`if`,
/// `match`, `for`, ... bodies) — i.e. one not followed by `else`, an
/// operator, `.`, or `?`.
pub fn split_statements(trees: &[Tree]) -> Vec<&[Tree]> {
    let mut stmts = Vec::new();
    let mut start = 0usize;
    let mut i = 0usize;
    while i < trees.len() {
        match &trees[i] {
            Tree::Punct(';', _) => {
                stmts.push(&trees[start..i]);
                start = i + 1;
            }
            Tree::Group(Delim::Brace, ..) => {
                let next = trees.get(i + 1);
                let continues = match next {
                    Some(Tree::Ident(kw, _)) => kw == "else",
                    Some(Tree::Punct(c, _)) => matches!(c, '.' | '?' | ',' | ')' | ']'),
                    Some(Tree::Group(..)) => true, // `{..}[i]` etc.
                    None => false,
                    _ => false,
                };
                if !continues {
                    stmts.push(&trees[start..=i]);
                    start = i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    if start < trees.len() {
        stmts.push(&trees[start..]);
    }
    stmts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> AstFile {
        AstFile::parse("test.rs", src).expect("parses")
    }

    #[test]
    fn comments_and_strings_are_not_code() {
        let f = parse(
            "fn f() {\n    // let x = v.unwrap();\n    let s = \"a.unwrap() // nope\";\n    let r = r#\"also.unwrap()\"#;\n}\n",
        );
        let sites = sites_in(&f.fns[0].body);
        assert!(
            !sites.iter().any(|s| matches!(s, Site::Method { name, .. } if name == "unwrap")),
            "comment/string content leaked into sites: {sites:?}"
        );
        assert_eq!(f.comments.len(), 1);
    }

    #[test]
    fn char_vs_lifetime() {
        let f = parse("fn f<'a>(x: &'a str) -> char { 'x' }\n");
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].params, vec![("x".to_owned(), "&'a str".to_owned())]);
    }

    #[test]
    fn method_and_call_sites() {
        let f = parse("fn f() { self.conns.lock(); Self::flush(a); std::thread::sleep(d); }\n");
        let sites = sites_in(&f.fns[0].body);
        assert!(sites.iter().any(|s| matches!(s, Site::Method { name, recv, .. }
            if name == "lock" && recv == &["self".to_owned(), "conns".to_owned()])));
        assert!(sites.iter().any(|s| matches!(s, Site::Call { path, .. }
            if path == &["Self".to_owned(), "flush".to_owned()])));
        assert!(sites.iter().any(|s| matches!(s, Site::Call { path, .. }
            if path == &["std".to_owned(), "thread".to_owned(), "sleep".to_owned()])));
    }

    #[test]
    fn index_sites_exclude_literals_and_macros() {
        let f = parse(
            "fn f() { let a = [0u8; 4]; let b = vec![1, 2]; let c = a[0]; let d = foo()[1]; let e = self.pool[2]; let [x, y] = c; }\n",
        );
        let sites = sites_in(&f.fns[0].body);
        let idx = sites.iter().filter(|s| matches!(s, Site::Index { .. })).count();
        assert_eq!(idx, 3, "expected a[0], foo()[1], self.pool[2]: {sites:?}");
    }

    #[test]
    fn macro_sites() {
        let f = parse("fn f() { panic!(\"boom\"); unreachable!(); }\n");
        let sites = sites_in(&f.fns[0].body);
        let names: Vec<&str> = sites
            .iter()
            .filter_map(|s| match s {
                Site::MacroUse { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec!["panic", "unreachable"]);
    }

    #[test]
    fn cfg_test_scoping() {
        let f = parse(
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn t() {}\n}\n#[cfg(not(test))]\nfn also_prod() {}\n",
        );
        let by_name = |n: &str| f.fns.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("prod").in_test);
        assert!(by_name("helper").in_test);
        assert!(by_name("t").in_test);
        assert!(!by_name("also_prod").in_test);
    }

    #[test]
    fn impl_owner_and_struct_fields() {
        let f = parse(
            "struct Host { conns: Arc<Mutex<HashMap<ConnId, ConnShared>>>, n: usize }\nimpl Host { fn go(&self) {} }\nimpl fmt::Debug for Host { fn fmt(&self) {} }\ntype ConnMap = Arc<Mutex<Outbox>>;\n",
        );
        assert_eq!(f.structs[0].name, "Host");
        assert_eq!(f.structs[0].fields[0].1, "Arc<Mutex<HashMap<ConnId,ConnShared>>>");
        assert_eq!(f.fns[0].owner.as_deref(), Some("Host"));
        assert_eq!(f.fns[1].owner.as_deref(), Some("Host"));
        assert_eq!(f.aliases[0], ("ConnMap".to_owned(), "Arc<Mutex<Outbox>>".to_owned()));
    }

    #[test]
    fn enum_variants() {
        let f = parse("enum Message { Register { user: u64 }, Deregister, Ping(u64) }\n");
        assert_eq!(f.enums[0].variants, vec!["Register", "Deregister", "Ping"]);
    }

    #[test]
    fn inner_attrs() {
        let f = parse("#![forbid(unsafe_code)]\n#![deny(missing_docs)]\nfn f() {}\n");
        assert_eq!(f.inner_attrs, vec!["forbid(unsafe_code)", "deny(missing_docs)"]);
    }

    #[test]
    fn statements_split_after_block_statements() {
        let f = parse("fn f() { if a { b(); } let g = x.lock(); loop { c(); } d(); }\n");
        let stmts = split_statements(&f.fns[0].body);
        assert_eq!(stmts.len(), 4, "{stmts:?}");
    }

    #[test]
    fn unbalanced_input_is_an_error() {
        assert!(AstFile::parse("bad.rs", "fn f() { (").is_err());
    }
}
