//! The `cosoft-audit` binary: runs every workspace lint — the textual
//! wire-protocol checks and the AST rules (panic-freedom ratchet,
//! blocking-call, lock-order, dispatch/restricted/header) — against
//! the real source tree and exits non-zero on any violation.
//!
//! Usage: `cosoft-audit [--panic-counts] [workspace-root]` — with no
//! root argument the workspace root is found by walking up from the
//! current directory to the first `Cargo.toml` containing a
//! `[workspace]` section. `scripts/check.sh` and the CI `audit` job
//! run it via `cargo run -p cosoft-audit`.
//!
//! `--panic-counts` prints every unannotated panic site and the
//! per-crate totals instead of auditing — the numbers to copy into
//! `audit-baseline.toml` when ratcheting it down.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use cosoft_audit::ast::AstWorkspace;
use cosoft_audit::baseline::{Baseline, BASELINE_PATH};
use cosoft_audit::rules::panics::unannotated_panic_sites;
use cosoft_audit::rules::run_ast_rules;
use cosoft_audit::{run_all_lints, Violation, WorkspaceSources};

fn workspace_root(args: &[String]) -> Option<PathBuf> {
    if let Some(arg) = args.first() {
        return Some(PathBuf::from(arg));
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let panic_counts = args.iter().any(|a| a == "--panic-counts");
    args.retain(|a| a != "--panic-counts");
    let Some(root) = workspace_root(&args) else {
        eprintln!("cosoft-audit: no workspace root found (pass it as the first argument)");
        return ExitCode::FAILURE;
    };
    let ws = match WorkspaceSources::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("cosoft-audit: failed to read workspace at {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    let ast = match AstWorkspace::parse(&ws.all_sources) {
        Ok(ast) => ast,
        Err(errors) => {
            for (path, e) in &errors {
                eprintln!("[ast-parse] {path}: {e}");
            }
            eprintln!("cosoft-audit: {} file(s) failed to parse", errors.len());
            return ExitCode::FAILURE;
        }
    };
    if panic_counts {
        let sites = unannotated_panic_sites(&ast);
        let mut counts = std::collections::BTreeMap::new();
        for site in &sites {
            println!("{}:{} {}", site.file, site.line, site.what);
            *counts.entry(site.crate_name).or_insert(0u64) += 1;
        }
        println!("[unannotated-panics]");
        for (name, _) in cosoft_audit::rules::RATCHETED_CRATES {
            println!("{name} = {}", counts.get(name).copied().unwrap_or(0));
        }
        return ExitCode::SUCCESS;
    }
    let mut violations = run_all_lints(&ws);
    match std::fs::read_to_string(root.join(BASELINE_PATH)) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(baseline) => violations.extend(run_ast_rules(&ast, &baseline)),
            Err(e) => violations.push(Violation {
                rule: "panic-ratchet",
                file: BASELINE_PATH.into(),
                detail: format!("baseline failed to parse: {e}"),
            }),
        },
        Err(e) => violations.push(Violation {
            rule: "panic-ratchet",
            file: BASELINE_PATH.into(),
            detail: format!(
                "missing baseline file ({e}) — run `cargo run -p cosoft-audit -- \
                 --panic-counts` and commit the counts"
            ),
        }),
    }
    if violations.is_empty() {
        println!(
            "cosoft-audit: OK ({} sources parsed, {} crate roots clean)",
            ws.all_sources.len(),
            ws.crate_roots.len()
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("cosoft-audit: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
