//! The `cosoft-audit` binary: runs every workspace protocol lint
//! against the real source tree and exits non-zero on any violation.
//!
//! Usage: `cosoft-audit [workspace-root]` — with no argument the
//! workspace root is found by walking up from the current directory to
//! the first `Cargo.toml` containing a `[workspace]` section.
//! `scripts/check.sh` and the CI `audit` job run it via
//! `cargo run -p cosoft-audit`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use cosoft_audit::{run_all_lints, WorkspaceSources};

fn workspace_root() -> Option<PathBuf> {
    if let Some(arg) = std::env::args().nth(1) {
        return Some(PathBuf::from(arg));
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let Some(root) = workspace_root() else {
        eprintln!("cosoft-audit: no workspace root found (pass it as the first argument)");
        return ExitCode::FAILURE;
    };
    let ws = match WorkspaceSources::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("cosoft-audit: failed to read workspace at {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    let violations = run_all_lints(&ws);
    if violations.is_empty() {
        println!(
            "cosoft-audit: OK ({} sources, {} crate roots clean)",
            ws.all_sources.len(),
            ws.crate_roots.len()
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("cosoft-audit: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
