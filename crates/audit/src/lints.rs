//! Source-level protocol lints.
//!
//! Every lint is a pure function from source text to a list of
//! [`Violation`]s, so the negative tests can feed doctored in-memory
//! sources without touching the filesystem; only [`WorkspaceSources::
//! load`] and the `cosoft-audit` binary do I/O.
//!
//! The lints enforce the four-way agreement that keeps the wire
//! protocol coherent:
//!
//! * the `Message` enum declaration (`crates/wire/src/message.rs`),
//! * the codec's encoder/decoder tag tables and the shared-frame
//!   `TAG_KIND_NAMES` table (`crates/wire/src/codec.rs`),
//! * the golden byte-vector suite (`crates/wire/tests/golden.rs`).
//!
//! The former text ports of the dispatch-coverage, restricted-call,
//! and crate-header rules now live in [`crate::rules`], rebuilt on the
//! parsed AST (see `rules::dispatch`, `rules::restricted`,
//! `rules::headers`) — token-level matching removed the false-positive
//! class where commented-out or string-literal code tripped the scan.
//! The wire-table lints here remain textual on purpose: their inputs
//! (`ALL_KINDS`, tag tables, golden vectors) are string/const tables
//! whose *literal* contents are exactly what is being compared.

use std::fmt;
use std::path::Path;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule identifier (e.g. `wire-tag-unique`).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// Human-readable description of the problem.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.rule, self.file, self.detail)
    }
}

/// The source files the lints operate on, keyed by their workspace
/// role. Construct directly for tests, or via [`WorkspaceSources::load`]
/// for the real tree.
#[derive(Debug, Clone, Default)]
pub struct WorkspaceSources {
    /// Contents of `crates/wire/src/message.rs` (enum + `ALL_KINDS` +
    /// `kind_name`).
    pub message_rs: String,
    /// Contents of `crates/wire/src/codec.rs` (`put_message` /
    /// `get_message` tag tables).
    pub codec_rs: String,
    /// Contents of `crates/wire/tests/golden.rs` (golden vector table).
    pub golden_rs: String,
    /// Contents of `crates/server/src/server.rs` (message dispatch).
    pub server_rs: String,
    /// `(workspace-relative path, contents)` of every crate root
    /// (`src/lib.rs` of each workspace member).
    pub crate_roots: Vec<(String, String)>,
    /// `(workspace-relative path, contents)` of every `.rs` file in the
    /// workspace (restricted-call scan).
    pub all_sources: Vec<(String, String)>,
    /// `(workspace-relative path, contents)` of every `Cargo.toml` in
    /// the workspace (feature-gating scan).
    pub manifests: Vec<(String, String)>,
}

impl WorkspaceSources {
    /// Reads the workspace rooted at `root` from disk.
    ///
    /// # Errors
    ///
    /// Fails when one of the four protocol files is missing or any
    /// source file is unreadable.
    pub fn load(root: &Path) -> std::io::Result<WorkspaceSources> {
        let read = |rel: &str| std::fs::read_to_string(root.join(rel));
        let mut ws = WorkspaceSources {
            message_rs: read("crates/wire/src/message.rs")?,
            codec_rs: read("crates/wire/src/codec.rs")?,
            golden_rs: read("crates/wire/tests/golden.rs")?,
            server_rs: read("crates/server/src/server.rs")?,
            crate_roots: Vec::new(),
            all_sources: Vec::new(),
            manifests: Vec::new(),
        };
        let mut files = Vec::new();
        collect_rs_files(root, root, &mut files)?;
        files.sort();
        for rel in files {
            let text = std::fs::read_to_string(root.join(&rel))?;
            if rel.ends_with("src/lib.rs") {
                ws.crate_roots.push((rel.clone(), text.clone()));
            }
            if rel.ends_with("Cargo.toml") {
                ws.manifests.push((rel, text));
            } else {
                ws.all_sources.push((rel, text));
            }
        }
        Ok(ws)
    }
}

/// Recursively collects workspace-relative `.rs` and `Cargo.toml`
/// paths, skipping build output and VCS metadata.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

// ---- parsing helpers -------------------------------------------------------

/// Strips a `//` line comment (doc comments included), ignoring `//`
/// inside string literals.
fn strip_line_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

/// Extracts the brace-delimited body that follows the first occurrence
/// of `marker` in `src` (string-literal- and comment-aware).
fn body_after(src: &str, marker: &str) -> Option<String> {
    let start = src.find(marker)?;
    let rest = &src[start..];
    let mut depth = 0usize;
    let mut body = String::new();
    let mut started = false;
    for line in rest.lines() {
        let code = strip_line_comment(line);
        for c in code.chars() {
            if c == '{' {
                depth += 1;
                started = true;
            } else if c == '}' {
                depth = depth.saturating_sub(1);
            }
        }
        if started {
            body.push_str(line);
            body.push('\n');
            if depth == 0 {
                return Some(body);
            }
        }
    }
    None
}

/// Parses the variant names of `pub enum Message` in declaration order.
pub fn message_variants(message_rs: &str) -> Vec<String> {
    let Some(body) = body_after(message_rs, "pub enum Message") else {
        return Vec::new();
    };
    let mut depth = 0usize;
    let mut variants = Vec::new();
    for line in body.lines() {
        let code = strip_line_comment(line);
        let trimmed = code.trim();
        if depth == 1 && !trimmed.is_empty() && !trimmed.starts_with('#') {
            let ident: String =
                trimmed.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
            if ident.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                variants.push(ident);
            }
        }
        for c in code.chars() {
            if c == '{' {
                depth += 1;
            } else if c == '}' {
                depth = depth.saturating_sub(1);
            }
        }
    }
    variants
}

/// Parses the `ALL_KINDS` string list from `message.rs`.
pub fn all_kinds(message_rs: &str) -> Vec<String> {
    let Some(start) = message_rs.find("ALL_KINDS") else {
        return Vec::new();
    };
    let rest = &message_rs[start..];
    let Some(end) = rest.find("];") else {
        return Vec::new();
    };
    let slice = &rest[..end];
    let mut kinds = Vec::new();
    let mut remaining = slice;
    while let Some(open) = remaining.find('"') {
        let after = &remaining[open + 1..];
        let Some(close) = after.find('"') else { break };
        kinds.push(after[..close].to_owned());
        remaining = &after[close + 1..];
    }
    kinds
}

/// Parses the `kind_name` match: `(variant, kind string)` pairs.
pub fn kind_name_map(message_rs: &str) -> Vec<(String, String)> {
    let Some(body) = body_after(message_rs, "pub fn kind_name") else {
        return Vec::new();
    };
    let mut pairs = Vec::new();
    for line in body.lines() {
        let code = strip_line_comment(line);
        let Some(vstart) = code.find("Message::") else { continue };
        let ident: String = code[vstart + "Message::".len()..]
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        let Some(arrow) = code.find("=>") else { continue };
        let after = &code[arrow + 2..];
        let Some(open) = after.find('"') else { continue };
        let lit = &after[open + 1..];
        let Some(close) = lit.find('"') else { continue };
        pairs.push((ident, lit[..close].to_owned()));
    }
    pairs
}

/// Finds the first integer literal passed to `put_u8(` within `segment`.
fn first_literal_tag(segment: &str) -> Option<u32> {
    let mut rest = segment;
    while let Some(pos) = rest.find("put_u8(") {
        let arg = &rest[pos + "put_u8(".len()..];
        let end = arg.find(')')?;
        if let Ok(tag) = arg[..end].trim().parse::<u32>() {
            return Some(tag);
        }
        rest = &arg[end..];
    }
    None
}

/// Parses the encoder tag table from `put_message`: `(variant, tag)` in
/// source order. A variant whose arm carries no literal tag is reported
/// with tag `None`.
pub fn encoder_tags(codec_rs: &str) -> Vec<(String, Option<u32>)> {
    let Some(body) = body_after(codec_rs, "pub fn put_message") else {
        return Vec::new();
    };
    let mut arms: Vec<(String, usize)> = Vec::new();
    let mut search = 0usize;
    while let Some(pos) = body[search..].find("Message::") {
        let at = search + pos;
        let ident: String = body[at + "Message::".len()..]
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if !ident.is_empty() {
            arms.push((ident, at));
        }
        search = at + "Message::".len();
    }
    let mut out = Vec::new();
    for (i, (ident, at)) in arms.iter().enumerate() {
        let end = arms.get(i + 1).map_or(body.len(), |(_, next)| *next);
        out.push((ident.clone(), first_literal_tag(&body[*at..end])));
    }
    out
}

/// Parses the decoder tag table from `get_message`: `(tag, variant)` in
/// source order.
pub fn decoder_tags(codec_rs: &str) -> Vec<(u32, Option<String>)> {
    let Some(body) = body_after(codec_rs, "pub fn get_message") else {
        return Vec::new();
    };
    // Collect the byte offset and tag of every `N =>` arm.
    let mut arms: Vec<(u32, usize)> = Vec::new();
    let mut offset = 0usize;
    for line in body.lines() {
        let code = strip_line_comment(line);
        let trimmed = code.trim_start();
        let digits: String = trimmed.chars().take_while(char::is_ascii_digit).collect();
        if !digits.is_empty() && trimmed[digits.len()..].trim_start().starts_with("=>") {
            if let Ok(tag) = digits.parse::<u32>() {
                arms.push((tag, offset));
            }
        }
        offset += line.len() + 1;
    }
    let mut out = Vec::new();
    for (i, (tag, at)) in arms.iter().enumerate() {
        let end = arms.get(i + 1).map_or(body.len(), |(_, next)| *next);
        let segment = &body[*at..end.min(body.len())];
        let variant = segment.find("Message::").map(|pos| {
            segment[pos + "Message::".len()..]
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect::<String>()
        });
        out.push((*tag, variant));
    }
    out
}

/// All `Message::Ident` references in a source text (deduplicated,
/// order of first appearance). Honors a `use Message as X;` alias.
fn message_refs(src: &str) -> Vec<String> {
    let mut prefixes = vec!["Message::".to_owned()];
    if let Some(pos) = src.find("use Message as ") {
        let alias: String = src[pos + "use Message as ".len()..]
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if !alias.is_empty() {
            prefixes.push(format!("{alias}::"));
        }
    }
    let mut seen = Vec::new();
    for prefix in &prefixes {
        let mut search = 0usize;
        while let Some(pos) = src[search..].find(prefix.as_str()) {
            let at = search + pos;
            // Require a non-ident character before the prefix so `M::`
            // does not match the tail of e.g. `COM::`.
            let standalone = at == 0
                || !src[..at]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
            let ident: String = src[at + prefix.len()..]
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if standalone
                && ident.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                && !seen.contains(&ident)
            {
                seen.push(ident);
            }
            search = at + prefix.len();
        }
    }
    seen
}

// ---- the lints -------------------------------------------------------------

const MESSAGE_RS: &str = "crates/wire/src/message.rs";
const CODEC_RS: &str = "crates/wire/src/codec.rs";
const GOLDEN_RS: &str = "crates/wire/tests/golden.rs";

/// Rule `enum-vs-kinds`: the enum declaration, `kind_name`, and
/// `ALL_KINDS` enumerate the same kinds.
pub fn lint_enum_against_kinds(message_rs: &str) -> Vec<Violation> {
    let mut v = Vec::new();
    let variants = message_variants(message_rs);
    let kinds = all_kinds(message_rs);
    let names = kind_name_map(message_rs);
    if variants.is_empty() {
        v.push(Violation {
            rule: "enum-vs-kinds",
            file: MESSAGE_RS.into(),
            detail: "could not parse any variants of `pub enum Message`".into(),
        });
        return v;
    }
    for variant in &variants {
        if !names.iter().any(|(n, _)| n == variant) {
            v.push(Violation {
                rule: "enum-vs-kinds",
                file: MESSAGE_RS.into(),
                detail: format!("variant `{variant}` has no `kind_name` arm"),
            });
        }
    }
    for (variant, kind) in &names {
        if !variants.contains(variant) {
            v.push(Violation {
                rule: "enum-vs-kinds",
                file: MESSAGE_RS.into(),
                detail: format!("`kind_name` names unknown variant `{variant}`"),
            });
        }
        if !kinds.contains(kind) {
            v.push(Violation {
                rule: "enum-vs-kinds",
                file: MESSAGE_RS.into(),
                detail: format!("kind `{kind}` (variant `{variant}`) missing from ALL_KINDS"),
            });
        }
    }
    for kind in &kinds {
        if !names.iter().any(|(_, k)| k == kind) {
            v.push(Violation {
                rule: "enum-vs-kinds",
                file: MESSAGE_RS.into(),
                detail: format!("ALL_KINDS entry `{kind}` matches no `kind_name` arm"),
            });
        }
    }
    let mut sorted = kinds.clone();
    sorted.sort();
    sorted.dedup();
    if sorted.len() != kinds.len() {
        v.push(Violation {
            rule: "enum-vs-kinds",
            file: MESSAGE_RS.into(),
            detail: "ALL_KINDS contains duplicate kind names".into(),
        });
    }
    v
}

/// Rule `wire-tag`: every variant has exactly one literal encoder tag,
/// tags are unique, and the decoder maps each tag back to the same
/// variant.
pub fn lint_wire_tags(message_rs: &str, codec_rs: &str) -> Vec<Violation> {
    let mut v = Vec::new();
    let variants = message_variants(message_rs);
    let enc = encoder_tags(codec_rs);
    let dec = decoder_tags(codec_rs);
    if enc.is_empty() {
        v.push(Violation {
            rule: "wire-tag",
            file: CODEC_RS.into(),
            detail: "could not parse any encoder arms in `put_message`".into(),
        });
        return v;
    }
    for variant in &variants {
        match enc.iter().find(|(name, _)| name == variant) {
            None => v.push(Violation {
                rule: "wire-tag",
                file: CODEC_RS.into(),
                detail: format!("variant `{variant}` has no `put_message` arm"),
            }),
            Some((_, None)) => v.push(Violation {
                rule: "wire-tag",
                file: CODEC_RS.into(),
                detail: format!("encoder arm for `{variant}` carries no literal tag byte"),
            }),
            Some((_, Some(tag))) => {
                // Decoder must round-trip the same tag to the same variant.
                match dec.iter().find(|(t, _)| t == tag) {
                    None => v.push(Violation {
                        rule: "wire-tag",
                        file: CODEC_RS.into(),
                        detail: format!("tag {tag} (`{variant}`) has no `get_message` arm"),
                    }),
                    Some((_, decoded)) if decoded.as_deref() != Some(variant.as_str()) => {
                        v.push(Violation {
                            rule: "wire-tag",
                            file: CODEC_RS.into(),
                            detail: format!(
                                "tag {tag} encodes `{variant}` but decodes to `{}`",
                                decoded.as_deref().unwrap_or("<nothing>")
                            ),
                        });
                    }
                    Some(_) => {}
                }
            }
        }
    }
    let mut tags: Vec<u32> = enc.iter().filter_map(|(_, t)| *t).collect();
    let n = tags.len();
    tags.sort_unstable();
    tags.dedup();
    if tags.len() != n {
        v.push(Violation {
            rule: "wire-tag",
            file: CODEC_RS.into(),
            detail: "duplicate wire tag in `put_message`".into(),
        });
    }
    for (name, _) in &enc {
        if !variants.contains(name) {
            v.push(Violation {
                rule: "wire-tag",
                file: CODEC_RS.into(),
                detail: format!("encoder names unknown variant `{name}`"),
            });
        }
    }
    v
}

/// Parses the tag-indexed `TAG_KIND_NAMES` table from `codec.rs`, in
/// table order (index = wire tag).
pub fn tag_kind_names(codec_rs: &str) -> Vec<String> {
    let Some(start) = codec_rs.find("TAG_KIND_NAMES") else {
        return Vec::new();
    };
    let rest = &codec_rs[start..];
    let Some(end) = rest.find("];") else {
        return Vec::new();
    };
    let mut names = Vec::new();
    for line in rest[..end].lines() {
        let code = strip_line_comment(line);
        let Some(open) = code.find('"') else { continue };
        let lit = &code[open + 1..];
        let Some(close) = lit.find('"') else { continue };
        names.push(lit[..close].to_owned());
    }
    names
}

/// Rule `shared-frame-table`: the shared-frame encode table
/// (`TAG_KIND_NAMES` in `codec.rs`, backing `SharedFrame::kind_name`)
/// stays in sync with the protocol. Checked entry-by-entry against the
/// *encoder's* tag assignments joined with `kind_name` — not
/// positionally against `ALL_KINDS`, whose declaration order is not
/// wire-tag order — plus set equality with the canonical kind list and
/// a duplicate scan.
pub fn lint_shared_frame_table(message_rs: &str, codec_rs: &str) -> Vec<Violation> {
    let mut v = Vec::new();
    let table = tag_kind_names(codec_rs);
    if table.is_empty() {
        v.push(Violation {
            rule: "shared-frame-table",
            file: CODEC_RS.into(),
            detail: "could not parse the `TAG_KIND_NAMES` table".into(),
        });
        return v;
    }
    let names = kind_name_map(message_rs);
    for (variant, tag) in encoder_tags(codec_rs) {
        let Some(tag) = tag else { continue }; // `wire-tag` reports missing tags
        let Some((_, kind)) = names.iter().find(|(n, _)| *n == variant) else {
            continue; // `enum-vs-kinds` reports missing kind_name arms
        };
        match table.get(tag as usize) {
            Some(entry) if entry == kind => {}
            Some(entry) => v.push(Violation {
                rule: "shared-frame-table",
                file: CODEC_RS.into(),
                detail: format!(
                    "TAG_KIND_NAMES[{tag}] is `{entry}` but the encoder assigns tag {tag} \
                     to `{variant}` (kind `{kind}`)"
                ),
            }),
            None => v.push(Violation {
                rule: "shared-frame-table",
                file: CODEC_RS.into(),
                detail: format!(
                    "TAG_KIND_NAMES has no entry for tag {tag} (`{variant}`, kind `{kind}`)"
                ),
            }),
        }
    }
    let kinds = all_kinds(message_rs);
    for kind in &kinds {
        if !table.contains(kind) {
            v.push(Violation {
                rule: "shared-frame-table",
                file: CODEC_RS.into(),
                detail: format!("kind `{kind}` from ALL_KINDS is missing from TAG_KIND_NAMES"),
            });
        }
    }
    for entry in &table {
        if !kinds.contains(entry) {
            v.push(Violation {
                rule: "shared-frame-table",
                file: CODEC_RS.into(),
                detail: format!("TAG_KIND_NAMES entry `{entry}` matches no ALL_KINDS kind"),
            });
        }
    }
    let mut sorted = table.clone();
    sorted.sort();
    sorted.dedup();
    if sorted.len() != table.len() {
        v.push(Violation {
            rule: "shared-frame-table",
            file: CODEC_RS.into(),
            detail: "TAG_KIND_NAMES contains duplicate kind names".into(),
        });
    }
    v
}

/// Rule `golden-coverage`: every variant is constructed somewhere in
/// the golden-vector suite, and the suite names no stale variants. The
/// suite's own `golden_table_is_complete` test enforces the per-entry
/// byte equality; this lint guarantees the suite cannot silently lag
/// the enum.
pub fn lint_golden_coverage(message_rs: &str, golden_rs: &str) -> Vec<Violation> {
    let mut v = Vec::new();
    let variants = message_variants(message_rs);
    let refs = message_refs(golden_rs);
    for variant in &variants {
        if !refs.contains(variant) {
            v.push(Violation {
                rule: "golden-coverage",
                file: GOLDEN_RS.into(),
                detail: format!("variant `{variant}` has no golden byte vector"),
            });
        }
    }
    for name in &refs {
        if name != "ALL_KINDS" && !variants.contains(name) {
            v.push(Violation {
                rule: "golden-coverage",
                file: GOLDEN_RS.into(),
                detail: format!("golden suite names unknown variant `{name}`"),
            });
        }
    }
    v
}

// ---- feature-gating lint ---------------------------------------------------

/// The manifest that owns the chaos-testing feature.
const NET_MANIFEST: &str = "crates/net/Cargo.toml";
/// The feature that must never reach a release build implicitly.
const FAULT_FEATURE: &str = "fault-injection";

/// Parses the `[features]` table of a manifest into
/// `(feature, enabled entries)` pairs. Line-oriented: the workspace
/// writes one feature per line, which `cargo fmt` conventions keep true.
fn manifest_features(manifest: &str) -> Vec<(String, Vec<String>)> {
    let mut features = Vec::new();
    let mut section = String::new();
    for line in manifest.lines() {
        let code = line.split('#').next().unwrap_or("").trim();
        if code.starts_with('[') {
            section = code.trim_start_matches('[').trim_end_matches(']').to_owned();
            continue;
        }
        if section != "features" || code.is_empty() {
            continue;
        }
        let Some((name, rest)) = code.split_once('=') else { continue };
        let name = name.trim().trim_matches('"').to_owned();
        let mut entries = Vec::new();
        let mut remaining = rest;
        while let Some(open) = remaining.find('"') {
            let after = &remaining[open + 1..];
            let Some(close) = after.find('"') else { break };
            entries.push(after[..close].to_owned());
            remaining = &after[close + 1..];
        }
        features.push((name, entries));
    }
    features
}

/// Whether `section` declares dependencies that reach release builds —
/// `[dependencies]`, `[dependencies.x]`, `[workspace.dependencies]`,
/// `[target.'…'.dependencies]`, `[build-dependencies]` — but not any
/// `dev-dependencies` flavor, which never ships.
fn is_release_dependency_section(section: &str) -> bool {
    if section.contains("dev-dependencies") {
        return false;
    }
    section == "dependencies"
        || section.starts_with("dependencies.")
        || section.ends_with("dependencies")
        || section.contains("dependencies.")
}

/// Rule `fault-injection-gating`: the chaos-test fault-injection
/// surface stays out of release builds. Three legs:
///
/// * `crates/net/Cargo.toml` still declares the `fault-injection`
///   feature (so the other legs cannot rot into vacuous passes);
/// * no manifest's `default` feature set reaches `fault-injection`,
///   directly or through intermediate features;
/// * no release-facing dependency declaration (anything but
///   `dev-dependencies`) turns the feature on unconditionally.
pub fn lint_fault_injection_gating(manifests: &[(String, String)]) -> Vec<Violation> {
    let mut v = Vec::new();
    match manifests.iter().find(|(p, _)| p == NET_MANIFEST) {
        None => v.push(Violation {
            rule: "fault-injection-gating",
            file: NET_MANIFEST.into(),
            detail: "manifest missing from the workspace scan".into(),
        }),
        Some((_, text)) => {
            if !manifest_features(text).iter().any(|(name, _)| name == FAULT_FEATURE) {
                v.push(Violation {
                    rule: "fault-injection-gating",
                    file: NET_MANIFEST.into(),
                    detail: format!(
                        "`{FAULT_FEATURE}` feature is no longer declared — the chaos tests \
                         and this lint both depend on it"
                    ),
                });
            }
        }
    }
    for (path, text) in manifests {
        // Leg 2: expand `default` transitively through the manifest's
        // own feature table.
        let features = manifest_features(text);
        let mut queue = vec!["default".to_owned()];
        let mut seen = vec![];
        while let Some(name) = queue.pop() {
            if seen.contains(&name) {
                continue;
            }
            if let Some((_, entries)) = features.iter().find(|(n, _)| *n == name) {
                for entry in entries {
                    if entry.contains(FAULT_FEATURE) {
                        v.push(Violation {
                            rule: "fault-injection-gating",
                            file: path.clone(),
                            detail: format!(
                                "default features reach `{entry}` (via `{name}`) — \
                                 `{FAULT_FEATURE}` must stay opt-in"
                            ),
                        });
                    } else {
                        queue.push(entry.clone());
                    }
                }
            }
            seen.push(name);
        }
        // Leg 3: release-facing dependency declarations must not force
        // the feature on.
        let mut section = String::new();
        for line in text.lines() {
            let code = line.split('#').next().unwrap_or("").trim();
            if code.starts_with('[') {
                section = code.trim_start_matches('[').trim_end_matches(']').to_owned();
                continue;
            }
            if is_release_dependency_section(&section) && code.contains(FAULT_FEATURE) {
                v.push(Violation {
                    rule: "fault-injection-gating",
                    file: path.clone(),
                    detail: format!(
                        "dependency declaration in `[{section}]` enables `{FAULT_FEATURE}` \
                         unconditionally: `{code}`"
                    ),
                });
            }
        }
    }
    v
}

/// Runs every text lint over the workspace sources. The AST rules
/// (panic ratchet, blocking calls, lock order, and the ported
/// dispatch/restricted/header checks) run separately via
/// [`crate::rules::run_ast_rules`].
pub fn run_all_lints(ws: &WorkspaceSources) -> Vec<Violation> {
    let mut v = Vec::new();
    v.extend(lint_enum_against_kinds(&ws.message_rs));
    v.extend(lint_wire_tags(&ws.message_rs, &ws.codec_rs));
    v.extend(lint_shared_frame_table(&ws.message_rs, &ws.codec_rs));
    v.extend(lint_golden_coverage(&ws.message_rs, &ws.golden_rs));
    v.extend(lint_fault_injection_gating(&ws.manifests));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    const ENUM: &str = r#"
/// Protocol messages.
pub enum Message {
    /// Join.
    Register {
        /// Who.
        user: u64,
    },
    /// Leave.
    Deregister,
}

impl Message {
    pub const ALL_KINDS: &'static [&'static str] = &[
        "register",
        "deregister",
    ];

    pub fn kind_name(&self) -> &'static str {
        match self {
            Message::Register { .. } => "register",
            Message::Deregister => "deregister",
        }
    }
}
"#;

    const CODEC: &str = r#"
pub fn put_message(buf: &mut BytesMut, m: &Message) {
    match m {
        Message::Register { user } => {
            buf.put_u8(0);
            put_uvarint(buf, *user);
        }
        Message::Deregister => buf.put_u8(1),
    }
}

pub fn get_message(buf: &mut Bytes) -> Result<Message> {
    let tag = get_u8(buf, "message tag")?;
    Ok(match tag {
        0 => Message::Register { user: get_uvarint(buf)? },
        1 => Message::Deregister,
        other => return Err(DecodeError::UnknownTag(other)),
    })
}
"#;

    #[test]
    fn parses_variants_kinds_and_names() {
        assert_eq!(message_variants(ENUM), vec!["Register", "Deregister"]);
        assert_eq!(all_kinds(ENUM), vec!["register", "deregister"]);
        assert_eq!(
            kind_name_map(ENUM),
            vec![
                ("Register".to_owned(), "register".to_owned()),
                ("Deregister".to_owned(), "deregister".to_owned())
            ]
        );
    }

    #[test]
    fn parses_tag_tables() {
        assert_eq!(
            encoder_tags(CODEC),
            vec![("Register".to_owned(), Some(0)), ("Deregister".to_owned(), Some(1))]
        );
        assert_eq!(
            decoder_tags(CODEC),
            vec![(0, Some("Register".to_owned())), (1, Some("Deregister".to_owned()))]
        );
    }

    #[test]
    fn consistent_sources_pass() {
        assert!(lint_enum_against_kinds(ENUM).is_empty());
        assert!(lint_wire_tags(ENUM, CODEC).is_empty());
    }

    #[test]
    fn missing_kind_is_reported() {
        let doctored = ENUM.replace("\n        \"deregister\",", "");
        let v = lint_enum_against_kinds(&doctored);
        assert!(v.iter().any(|v| v.detail.contains("missing from ALL_KINDS")), "got {v:?}");
    }

    #[test]
    fn duplicate_tag_is_reported() {
        let doctored = CODEC.replace("buf.put_u8(1),", "buf.put_u8(0),");
        let v = lint_wire_tags(ENUM, &doctored);
        assert!(v.iter().any(|v| v.detail.contains("duplicate wire tag")), "got {v:?}");
    }

    #[test]
    fn decoder_mismatch_is_reported() {
        let doctored = CODEC.replace("1 => Message::Deregister,", "");
        let v = lint_wire_tags(ENUM, &doctored);
        assert!(v.iter().any(|v| v.detail.contains("no `get_message` arm")), "got {v:?}");
    }

    const TABLE: &str = r#"
pub const TAG_KIND_NAMES: &[&str] = &[
    "register",   // 0
    "deregister", // 1
];
"#;

    fn codec_with_table() -> String {
        format!("{CODEC}{TABLE}")
    }

    #[test]
    fn parses_tag_kind_names_in_order() {
        assert_eq!(tag_kind_names(&codec_with_table()), vec!["register", "deregister"]);
    }

    #[test]
    fn consistent_shared_frame_table_passes() {
        assert!(lint_shared_frame_table(ENUM, &codec_with_table()).is_empty());
    }

    #[test]
    fn missing_shared_frame_table_is_reported() {
        let v = lint_shared_frame_table(ENUM, CODEC);
        assert!(v.iter().any(|v| v.detail.contains("could not parse")), "got {v:?}");
    }

    #[test]
    fn swapped_shared_frame_entries_are_reported() {
        // Same *set* of kinds, wrong tag order: the set checks pass, so
        // only the entry-by-entry comparison against the encoder's tag
        // assignments can catch it.
        let doctored = codec_with_table()
            .replace("\"register\",   // 0", "\"deregister\", // 0")
            .replace("\"deregister\", // 1", "\"register\",   // 1");
        let v = lint_shared_frame_table(ENUM, &doctored);
        assert!(v.iter().any(|v| v.detail.contains("but the encoder assigns tag")), "got {v:?}");
    }

    #[test]
    fn truncated_shared_frame_table_is_reported() {
        let doctored = codec_with_table().replace("    \"deregister\", // 1\n", "");
        let v = lint_shared_frame_table(ENUM, &doctored);
        assert!(v.iter().any(|v| v.detail.contains("no entry for tag 1")), "got {v:?}");
        assert!(v.iter().any(|v| v.detail.contains("missing from TAG_KIND_NAMES")), "got {v:?}");
    }

    #[test]
    fn duplicate_shared_frame_entry_is_reported() {
        let doctored = codec_with_table().replace("\"deregister\", // 1", "\"register\", // 1");
        let v = lint_shared_frame_table(ENUM, &doctored);
        assert!(v.iter().any(|v| v.detail.contains("duplicate kind names")), "got {v:?}");
    }

    #[test]
    fn stale_shared_frame_entry_is_reported() {
        let doctored = codec_with_table().replace("\"deregister\"", "\"bygone\"");
        let v = lint_shared_frame_table(ENUM, &doctored);
        assert!(v.iter().any(|v| v.detail.contains("matches no ALL_KINDS kind")), "got {v:?}");
    }

    #[test]
    fn comment_stripping_respects_strings() {
        assert_eq!(strip_line_comment("let a = 1; // tail"), "let a = 1; ");
        assert_eq!(strip_line_comment("let s = \"a//b\";"), "let s = \"a//b\";");
    }

    const NET_TOML: &str = r#"
[package]
name = "cosoft-net"

[features]
# Chaos-test surface.
fault-injection = []

[dependencies]
cosoft-wire = { path = "../wire" }
"#;

    fn manifests(extra: &[(&str, &str)]) -> Vec<(String, String)> {
        let mut m = vec![("crates/net/Cargo.toml".to_owned(), NET_TOML.to_owned())];
        m.extend(extra.iter().map(|(p, t)| ((*p).to_owned(), (*t).to_owned())));
        m
    }

    #[test]
    fn gated_fault_injection_passes() {
        let m = manifests(&[(
            "Cargo.toml",
            "[features]\nfault-injection = [\"cosoft-net/fault-injection\"]\n\
             [dependencies]\ncosoft-net = { path = \"crates/net\" }\n\
             [dev-dependencies]\ncosoft-net = { path = \"crates/net\", \
             features = [\"fault-injection\"] }\n",
        )]);
        assert!(lint_fault_injection_gating(&m).is_empty());
    }

    #[test]
    fn missing_feature_declaration_is_reported() {
        let m = vec![(
            "crates/net/Cargo.toml".to_owned(),
            NET_TOML.replace("fault-injection = []", ""),
        )];
        let v = lint_fault_injection_gating(&m);
        assert!(v.iter().any(|v| v.detail.contains("no longer declared")), "got {v:?}");
    }

    #[test]
    fn missing_net_manifest_is_reported() {
        let v = lint_fault_injection_gating(&[]);
        assert!(v.iter().any(|v| v.detail.contains("missing from the workspace scan")));
    }

    #[test]
    fn default_feature_reaching_fault_injection_is_reported() {
        let m = manifests(&[(
            "Cargo.toml",
            "[features]\ndefault = [\"full\"]\nfull = [\"cosoft-net/fault-injection\"]\n",
        )]);
        let v = lint_fault_injection_gating(&m);
        assert!(
            v.iter().any(|v| v.rule == "fault-injection-gating"
                && v.detail.contains("default features reach")),
            "got {v:?}"
        );
    }

    #[test]
    fn release_dependency_enabling_fault_injection_is_reported() {
        let m = manifests(&[(
            "crates/apps/Cargo.toml",
            "[dependencies]\ncosoft-net = { path = \"../net\", \
             features = [\"fault-injection\"] }\n",
        )]);
        let v = lint_fault_injection_gating(&m);
        assert!(v.iter().any(|v| v.detail.contains("unconditionally")), "got {v:?}");
    }

    #[test]
    fn dev_dependency_enabling_fault_injection_is_fine() {
        let m = manifests(&[(
            "crates/apps/Cargo.toml",
            "[dev-dependencies]\ncosoft-net = { path = \"../net\", \
             features = [\"fault-injection\"] }\n",
        )]);
        assert!(lint_fault_injection_gating(&m).is_empty());
    }
}
