//! Rule `lock-order`: a whole-program static deadlock check over the
//! mutexes of `cosoft-server` and `cosoft-net`.
//!
//! The PR 3 schedule explorer finds deadlocks dynamically, but only in
//! the interleavings the model drives. This rule complements it with a
//! static over-approximation: every `.lock()` site is assigned a lock
//! *identity*, the acquisition graph "identity A held while identity B
//! is acquired" is extracted (intra-procedurally via guard scopes,
//! inter-procedurally via per-function transitive lock sets), and a
//! cycle in that graph fails the audit.
//!
//! Lock identity is the receiver's *type* where the [`TypeEnv`] can
//! resolve it (`self.conns.lock()` on a `ConnMap` field →
//! `Mutex<HashMap<ConnId,ConnShared>>` after alias expansion and
//! `Arc` stripping) — so every clone of a shared mutex is one node —
//! and the receiver *expression text* otherwise (`c.outbox` on a
//! closure binding). Unresolved receivers therefore split rather than
//! merge: two different locals never collapse into one node, which
//! keeps alias-driven false cycles out at the cost of possibly missing
//! an ordering between locks the environment cannot see.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::ast::{shallow_sites, split_statements, AstWorkspace, Delim, FnDef, Site, Tree};
use crate::lints::Violation;
use crate::rules::{callee_keys, FnKey, TypeEnv};

/// Path prefixes the rule covers.
const COVERED: &[&str] = &["crates/server/src/", "crates/net/src/"];

/// One function in the table.
struct FnNode<'a> {
    file: &'a str,
    def: &'a FnDef,
}

/// One acquisition edge: while `from` was held, `to` was acquired at
/// `witness` (`file:line`).
type EdgeMap = BTreeMap<String, BTreeMap<String, String>>;

/// Rule `lock-order`: see the module docs.
pub fn lint_lock_order(ws: &AstWorkspace) -> Vec<Violation> {
    let files: Vec<_> =
        ws.files.iter().filter(|f| COVERED.iter().any(|p| f.path.starts_with(p))).collect();
    let env = TypeEnv::from_files(files.iter().copied());
    let mut nodes: Vec<FnNode<'_>> = Vec::new();
    let mut by_key: HashMap<FnKey, Vec<usize>> = HashMap::new();
    for file in &files {
        for def in file.fns.iter().filter(|f| !f.in_test) {
            let idx = nodes.len();
            nodes.push(FnNode { file: &file.path, def });
            by_key.entry((def.owner.clone(), def.name.clone())).or_default().push(idx);
        }
    }
    let resolve = |site: &Site, caller: &FnDef| -> Vec<usize> {
        callee_keys(site, caller, &env)
            .iter()
            .flat_map(|k| by_key.get(k).into_iter().flatten().copied())
            .collect()
    };
    let identity = |site: &Site, caller: &FnDef| -> Option<String> {
        let Site::Method { name, recv, .. } = site else { return None };
        if name != "lock" || recv.is_empty() {
            return None;
        }
        Some(match env.resolve_chain(recv, caller) {
            Some(ty) => ty,
            None => recv.join("."),
        })
    };

    // Per-function transitive lock sets (fixpoint over call edges).
    let mut lock_sets: Vec<BTreeSet<String>> = nodes
        .iter()
        .map(|n| {
            crate::ast::sites_in(&n.def.body).iter().filter_map(|s| identity(s, n.def)).collect()
        })
        .collect();
    loop {
        let mut changed = false;
        for idx in 0..nodes.len() {
            let mut gained: Vec<String> = Vec::new();
            for site in crate::ast::sites_in(&nodes[idx].def.body) {
                for callee in resolve(&site, nodes[idx].def) {
                    if callee == idx {
                        continue;
                    }
                    for id in &lock_sets[callee] {
                        if !lock_sets[idx].contains(id) {
                            gained.push(id.clone());
                        }
                    }
                }
            }
            for id in gained {
                changed |= lock_sets[idx].insert(id);
            }
        }
        if !changed {
            break;
        }
    }

    // Acquisition edges via guard-scope scanning.
    let mut edges: EdgeMap = BTreeMap::new();
    for node in &nodes {
        scan_edges(
            &node.def.body,
            node,
            &mut Vec::new(),
            &identity,
            &resolve,
            &lock_sets,
            &mut edges,
        );
    }

    // Cycle detection (DFS with colors).
    let mut violations = Vec::new();
    if let Some(cycle) = find_cycle(&edges) {
        let mut path = Vec::new();
        for window in cycle.windows(2) {
            let witness = &edges[&window[0]][&window[1]];
            path.push(format!("`{}` → `{}` ({witness})", window[0], window[1]));
        }
        violations.push(Violation {
            rule: "lock-order",
            file: edges[&cycle[0]][&cycle[1]].split(':').next().unwrap_or_default().to_owned(),
            detail: format!(
                "mutex-acquisition cycle — a schedule acquiring these locks concurrently can \
                 deadlock: {}",
                path.join(", ")
            ),
        });
    }
    violations
}

/// A live lock guard: identity plus acquisition line.
#[derive(Clone)]
struct Held {
    name: Option<String>,
    id: String,
    line: u32,
}

/// Scans a block statement-by-statement recording acquisition edges.
fn scan_edges(
    trees: &[Tree],
    node: &FnNode<'_>,
    active: &mut Vec<Held>,
    identity: &dyn Fn(&Site, &FnDef) -> Option<String>,
    resolve: &dyn Fn(&Site, &FnDef) -> Vec<usize>,
    lock_sets: &[BTreeSet<String>],
    edges: &mut EdgeMap,
) {
    for stmt in split_statements(trees) {
        if let [Tree::Ident(d, _), Tree::Group(Delim::Paren, args, _)] = stmt {
            if d == "drop" {
                if let [Tree::Ident(name, _)] = args.as_slice() {
                    active.retain(|g| g.name.as_deref() != Some(name));
                    continue;
                }
            }
        }
        let let_bound = super::let_bound_name(stmt);
        let mut stmt_locks: Vec<Held> = Vec::new();
        for site in shallow_sites(stmt) {
            if let Some(id) = identity(&site, node.def) {
                let witness = format!("{}:{}", node.file, site.line());
                for held in active.iter().chain(stmt_locks.iter()) {
                    if held.id != id {
                        edges
                            .entry(held.id.clone())
                            .or_default()
                            .entry(id.clone())
                            .or_insert(witness.clone());
                    }
                }
                stmt_locks.push(Held { name: None, id, line: site.line() });
            } else {
                // A call made while locks are held: edges to everything
                // the callee may acquire transitively.
                for callee in resolve(&site, node.def) {
                    for id in &lock_sets[callee] {
                        let witness = format!("{}:{}", node.file, site.line());
                        for held in active.iter().chain(stmt_locks.iter()) {
                            if &held.id != id {
                                edges
                                    .entry(held.id.clone())
                                    .or_default()
                                    .entry(id.clone())
                                    .or_insert(witness.clone());
                            }
                        }
                    }
                }
            }
        }
        if let (Some(name), Some(first)) = (let_bound, stmt_locks.first()) {
            active.push(Held { name: Some(name), id: first.id.clone(), line: first.line });
        }
        for t in stmt {
            if let Tree::Group(Delim::Brace, inner, _) = t {
                let mut scoped = active.clone();
                scan_edges(inner, node, &mut scoped, identity, resolve, lock_sets, edges);
            }
        }
    }
}

/// Finds one cycle in the edge map, returned as a node path whose first
/// and last elements are equal (`[A, B, A]`), or `None` if acyclic.
fn find_cycle(edges: &EdgeMap) -> Option<Vec<String>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    fn dfs(
        node: &str,
        edges: &EdgeMap,
        colors: &mut BTreeMap<String, Color>,
        stack: &mut Vec<String>,
    ) -> Option<Vec<String>> {
        colors.insert(node.to_owned(), Color::Gray);
        stack.push(node.to_owned());
        if let Some(succ) = edges.get(node) {
            for next in succ.keys() {
                match colors.get(next.as_str()).copied().unwrap_or(Color::White) {
                    Color::Gray => {
                        let start = stack.iter().position(|n| n == next).unwrap_or(0);
                        let mut cycle: Vec<String> = stack[start..].to_vec();
                        cycle.push(next.clone());
                        return Some(cycle);
                    }
                    Color::White => {
                        if let Some(cycle) = dfs(next, edges, colors, stack) {
                            return Some(cycle);
                        }
                    }
                    Color::Black => {}
                }
            }
        }
        stack.pop();
        colors.insert(node.to_owned(), Color::Black);
        None
    }
    let mut colors = BTreeMap::new();
    for node in edges.keys() {
        if colors.get(node.as_str()).copied().unwrap_or(Color::White) == Color::White {
            if let Some(cycle) = dfs(node, edges, &mut colors, &mut Vec::new()) {
                return Some(cycle);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(src: &str) -> AstWorkspace {
        AstWorkspace::parse(&[("crates/net/src/tcp.rs".to_owned(), src.to_owned())])
            .expect("parses")
    }

    const STRUCTS: &str = "
struct Host { a: Mutex<First>, b: Mutex<Second> }
";

    #[test]
    fn consistent_order_passes() {
        let src = format!(
            "{STRUCTS}
impl Host {{
    fn one(&self) {{ let g = self.a.lock(); self.b.lock(); }}
    fn two(&self) {{ let g = self.a.lock(); self.b.lock(); }}
}}
"
        );
        assert!(lint_lock_order(&ws(&src)).is_empty());
    }

    #[test]
    fn two_lock_cycle_is_flagged() {
        let src = format!(
            "{STRUCTS}
impl Host {{
    fn one(&self) {{ let g = self.a.lock(); self.b.lock(); }}
    fn two(&self) {{ let g = self.b.lock(); self.a.lock(); }}
}}
"
        );
        let v = lint_lock_order(&ws(&src));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].rule == "lock-order" && v[0].detail.contains("cycle"), "{v:?}");
        assert!(v[0].detail.contains("Mutex<First>"), "{v:?}");
    }

    #[test]
    fn interprocedural_cycle_is_flagged() {
        let src = format!(
            "{STRUCTS}
impl Host {{
    fn one(&self) {{ let g = self.a.lock(); self.deep_b(); }}
    fn deep_b(&self) {{ self.b.lock(); }}
    fn two(&self) {{ let g = self.b.lock(); self.deep_a(); }}
    fn deep_a(&self) {{ self.a.lock(); }}
}}
"
        );
        let v = lint_lock_order(&ws(&src));
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn drop_releases_and_same_identity_does_not_self_edge() {
        let src = format!(
            "{STRUCTS}
impl Host {{
    fn one(&self) {{ let g = self.a.lock(); drop(g); self.b.lock(); }}
    fn two(&self) {{ let g = self.b.lock(); self.a.lock(); }}
}}
"
        );
        assert!(lint_lock_order(&ws(&src)).is_empty());
    }

    #[test]
    fn unresolved_receivers_do_not_alias() {
        // Two different locals named differently must be distinct nodes;
        // identical chains on clones of the same Arc'd mutex resolve by
        // type when fields are visible.
        let src = "
struct Host { conns: Arc<Mutex<Conns>> }
impl Host {
    fn snapshot(&self) {
        let conns = self.conns.lock();
        for c in conns.values() { c.outbox.lock(); }
    }
}
";
        let v = lint_lock_order(&ws(src));
        assert!(v.is_empty(), "{v:?}");
    }
}
