//! Rule `restricted-call` (AST port): teardown-only lock APIs and the
//! shard-only `ServerCore` surface may only be called from sanctioned
//! modules.
//!
//! The text-lint predecessor matched needles like `.force_unlock(`
//! anywhere in a file, so a code example in a doc comment or a string
//! literal tripped it. This port matches actual method-call and
//! UFCS-path sites extracted from the token stream, so only real calls
//! count — and it reports the offending line.

use crate::ast::{sites_in, AstWorkspace, Site};
use crate::lints::Violation;

/// Modules allowed to call `LockTable::force_unlock` (teardown-only
/// API): the lock table itself (definition + unit tests) and the
/// lock-table property suite.
pub const FORCE_UNLOCK_SANCTIONED: &[&str] =
    &["crates/server/src/locks.rs", "crates/server/tests/lock_props.rs"];

/// Path prefixes allowed to call `LockTable::unlock_exec` (lock release
/// is the server core's job; clients and tests drive it through
/// messages). The lock-granularity benchmarks exercise the table
/// directly and are sanctioned too.
pub const UNLOCK_EXEC_SANCTIONED: &[&str] =
    &["crates/server/src/", "crates/server/tests/", "crates/bench/benches/"];

/// Path prefixes allowed to call the shard-only `ServerCore` surface
/// (`extract_component` / `absorb_component` / `deliver_command` /
/// `take_route_events`): the core and router that define it, the server
/// test suites that drive handoffs directly, and the runtime that owns
/// the shard set. Everything else must go through `ShardRouter`, which
/// keeps its routing maps consistent — a stray caller draining the
/// route log or extracting a component silently desyncs the router.
pub const SHARD_API_SANCTIONED: &[&str] = &[
    "crates/server/src/server.rs",
    "crates/server/src/shard.rs",
    "crates/server/tests/",
    "src/runtime.rs",
];

/// `(method name, sanctioned paths)` for every restricted API.
const RESTRICTED: &[(&str, &[&str])] = &[
    ("force_unlock", FORCE_UNLOCK_SANCTIONED),
    ("unlock_exec", UNLOCK_EXEC_SANCTIONED),
    ("extract_component", SHARD_API_SANCTIONED),
    ("absorb_component", SHARD_API_SANCTIONED),
    ("deliver_command", SHARD_API_SANCTIONED),
    ("take_route_events", SHARD_API_SANCTIONED),
];

/// Rule `restricted-call`: see the module docs. The audit crate's own
/// sources are exempt (they mention the names as data).
pub fn lint_restricted_calls(ws: &AstWorkspace) -> Vec<Violation> {
    let mut violations = Vec::new();
    for file in &ws.files {
        if file.path.starts_with("crates/audit/") {
            continue;
        }
        for f in &file.fns {
            for site in sites_in(&f.body) {
                let called = match &site {
                    Site::Method { name, .. } => Some(name.as_str()),
                    Site::Call { path, .. } => path.last().map(String::as_str),
                    _ => None,
                };
                let Some(called) = called else { continue };
                for (name, sanctioned) in RESTRICTED {
                    if called == *name
                        && !sanctioned.iter().any(|s| file.path == *s || file.path.starts_with(s))
                    {
                        violations.push(Violation {
                            rule: "restricted-call",
                            file: file.path.clone(),
                            detail: format!(
                                "line {}: calls restricted API `{name}` outside sanctioned \
                                 modules",
                                site.line()
                            ),
                        });
                    }
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> AstWorkspace {
        let sources: Vec<(String, String)> =
            files.iter().map(|(p, t)| ((*p).to_owned(), (*t).to_owned())).collect();
        AstWorkspace::parse(&sources).expect("parses")
    }

    #[test]
    fn unsanctioned_call_is_flagged() {
        let w = ws(&[(
            "crates/core/src/session.rs",
            "fn f(t: &mut LockTable) { t.force_unlock(1); }\n",
        )]);
        let v = lint_restricted_calls(&w);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("force_unlock"));
    }

    #[test]
    fn sanctioned_and_ufcs_calls() {
        let ok = ws(&[(
            "crates/server/src/locks.rs",
            "fn f(t: &mut LockTable) { t.force_unlock(1); LockTable::force_unlock(t, 2); }\n",
        )]);
        assert!(lint_restricted_calls(&ok).is_empty());
        let bad = ws(&[(
            "crates/core/src/session.rs",
            "fn f(t: &mut LockTable) { LockTable::force_unlock(t, 2); }\n",
        )]);
        assert_eq!(lint_restricted_calls(&bad).len(), 1);
    }

    #[test]
    fn comments_and_strings_do_not_trip() {
        let w = ws(&[(
            "crates/core/src/session.rs",
            "/// Call `.force_unlock(exec)` only at teardown.\nfn f() { let s = \"x.force_unlock(1)\"; }\n",
        )]);
        assert!(lint_restricted_calls(&w).is_empty());
    }

    #[test]
    fn audit_crate_is_exempt() {
        let w = ws(&[(
            "crates/audit/src/rules/restricted.rs",
            "fn f(t: &mut LockTable) { t.force_unlock(1); }\n",
        )]);
        assert!(lint_restricted_calls(&w).is_empty());
    }
}
