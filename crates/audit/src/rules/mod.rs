//! AST-level audit rules and their shared infrastructure.
//!
//! Each rule is a pure function from an [`AstWorkspace`] (plus, for the
//! ratchet, a [`Baseline`]) to a list of [`Violation`]s, mirroring the
//! text lints in [`crate::lints`] so negative tests can feed doctored
//! in-memory workspaces. The rules:
//!
//! * [`panics`] — the panic-freedom ratchet over `cosoft-server`,
//!   `cosoft-net`, `cosoft-wire`: every `unwrap`/`expect`/`panic!`/
//!   `unreachable!`/direct index in non-test code is annotated
//!   `// audit: infallible — <reason>` or counted against the
//!   committed `audit-baseline.toml`, which may only shrink.
//! * [`blocking`] — walks the call graph reachable from
//!   `PollThread::run` and rejects `std::thread::sleep`, blocking
//!   `recv`, and locks held across socket writes (the PR 7 poll-loop
//!   invariants).
//! * [`lock_order`] — extracts the static mutex-acquisition graph
//!   across `cosoft-server`/`cosoft-net` and fails on cycles.
//! * [`restricted`], [`headers`], [`dispatch`] — AST ports of the
//!   former text lints (restricted-call, crate-header,
//!   dispatch-coverage); operating on tokens instead of lines kills
//!   the false-positive class where commented-out or string-literal
//!   code matched the scan.
//!
//! # Annotation grammar
//!
//! A suppression is a line comment, on the offending line or the line
//! directly above it:
//!
//! ```text
//! // audit: <key> — <reason>
//! ```
//!
//! with `<key>` one of `infallible` (panic sites proven unreachable)
//! or `lock-across-write` (a lock deliberately held across a socket
//! write), and a non-empty `<reason>`. `--` is accepted in place of the
//! em dash. Malformed annotations and `infallible` annotations that
//! suppress nothing are themselves violations; annotations inside test
//! code are ignored entirely.

pub mod blocking;
pub mod dispatch;
pub mod headers;
pub mod lock_order;
pub mod panics;
pub mod restricted;

use std::collections::HashMap;

use crate::ast::{AstFile, AstWorkspace, Comment, FnDef};
use crate::baseline::Baseline;
use crate::lints::Violation;

/// The ratcheted crates: `(crate name, source-path prefix)`. Test code
/// (`#[cfg(test)]`, `#[test]`, `tests/` trees outside these prefixes)
/// is exempt.
pub const RATCHETED_CRATES: &[(&str, &str)] = &[
    ("cosoft-net", "crates/net/src/"),
    ("cosoft-server", "crates/server/src/"),
    ("cosoft-wire", "crates/wire/src/"),
];

/// The crate a workspace-relative source path belongs to, if ratcheted.
pub fn ratcheted_crate(path: &str) -> Option<&'static str> {
    RATCHETED_CRATES.iter().find(|(_, p)| path.starts_with(p)).map(|(c, _)| *c)
}

/// Annotation keys the grammar accepts.
pub const ANNOTATION_KEYS: &[&str] = &["infallible", "lock-across-write"];

/// One parsed `// audit:` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// Source line of the comment.
    pub line: u32,
    /// The key (`infallible` or `lock-across-write`).
    pub key: String,
    /// The justification text.
    pub reason: String,
}

/// Parses the `// audit:` annotations out of a file's comments.
/// Returns the well-formed annotations and `(line, problem)` for each
/// malformed one.
pub fn parse_annotations(comments: &[Comment]) -> (Vec<Annotation>, Vec<(u32, String)>) {
    let mut ok = Vec::new();
    let mut bad = Vec::new();
    for (line, text) in comments {
        let Some(rest) = text.trim().strip_prefix("audit:") else { continue };
        let rest = rest.trim();
        let (key, reason) = match rest.split_once('—').or_else(|| rest.split_once("--")) {
            Some((k, r)) => (k.trim(), r.trim()),
            None => (rest, ""),
        };
        if !ANNOTATION_KEYS.contains(&key) {
            bad.push((
                *line,
                format!(
                    "unknown annotation key `{key}` (expected one of: {})",
                    ANNOTATION_KEYS.join(", ")
                ),
            ));
        } else if reason.is_empty() {
            bad.push((
                *line,
                format!("annotation `audit: {key}` is missing its `— <reason>` justification"),
            ));
        } else {
            ok.push(Annotation { line: *line, key: key.to_owned(), reason: reason.to_owned() });
        }
    }
    (ok, bad)
}

/// Line ranges `(start, end)` (inclusive) covered by test code in
/// `file` — used to ignore annotations that live in test code.
pub fn test_line_ranges(file: &AstFile) -> Vec<(u32, u32)> {
    file.test_ranges.clone()
}

/// Whether `line` falls inside any of `ranges`.
pub fn in_ranges(ranges: &[(u32, u32)], line: u32) -> bool {
    ranges.iter().any(|(a, b)| (*a..=*b).contains(&line))
}

/// Struct-field and type-alias tables for resolving receiver chains
/// like `self.conns` or `conn.outbox` to a type.
#[derive(Debug, Default)]
pub struct TypeEnv {
    /// struct name → field name → normalized type text.
    fields: HashMap<String, HashMap<String, String>>,
    /// alias name → normalized target type text.
    aliases: HashMap<String, String>,
}

impl TypeEnv {
    /// Builds the environment from a set of parsed files.
    pub fn from_files<'a>(files: impl Iterator<Item = &'a AstFile>) -> TypeEnv {
        let mut env = TypeEnv::default();
        for file in files {
            for s in &file.structs {
                let entry = env.fields.entry(s.name.clone()).or_default();
                for (name, ty) in &s.fields {
                    entry.insert(name.clone(), ty.clone());
                }
            }
            for (name, target) in &file.aliases {
                env.aliases.insert(name.clone(), target.clone());
            }
        }
        env
    }

    /// Whether `name` is a struct the environment knows.
    pub fn knows_struct(&self, name: &str) -> bool {
        self.fields.contains_key(name)
    }

    /// Strips references, lifetimes, `mut`, and smart-pointer wrappers
    /// (`Arc`/`Rc`/`Box`), and expands type aliases, repeatedly until a
    /// fixpoint: `&'a Arc<ConnMap>` → the aliased `Mutex<...>` text.
    pub fn expand(&self, ty: &str) -> String {
        let mut cur = ty.trim().to_owned();
        for _ in 0..16 {
            let before = cur.clone();
            while let Some(stripped) = cur.strip_prefix('&') {
                cur = stripped.trim_start().to_owned();
            }
            if cur.starts_with('\'') {
                cur = cur.split_once(' ').map(|(_, rest)| rest.to_owned()).unwrap_or_default();
            }
            if let Some(stripped) = cur.strip_prefix("mut ") {
                cur = stripped.to_owned();
            }
            for wrapper in ["Arc", "Rc", "Box"] {
                if let Some(inner) = cur
                    .strip_prefix(wrapper)
                    .and_then(|r| r.strip_prefix('<'))
                    .and_then(|r| r.strip_suffix('>'))
                {
                    cur = inner.to_owned();
                }
            }
            if let Some(target) = self.aliases.get(cur.as_str()) {
                cur = target.clone();
            }
            if cur == before {
                break;
            }
        }
        cur
    }

    /// The expanded type of `owner.field`, if known.
    pub fn field_type(&self, owner: &str, field: &str) -> Option<String> {
        self.fields.get(owner)?.get(field).map(|t| self.expand(t))
    }

    /// Resolves a receiver chain (e.g. `["self", "conns"]`) to an
    /// expanded type, using `f`'s owner for `self` and its parameter
    /// types for named bases. Returns `None` when the base is a local
    /// binding the static environment cannot see.
    pub fn resolve_chain(&self, chain: &[String], f: &FnDef) -> Option<String> {
        let (base, rest) = chain.split_first()?;
        let mut cur = if base == "self" {
            f.owner.clone()?
        } else {
            let (_, ty) = f.params.iter().find(|(name, _)| name == base)?;
            self.expand(ty)
        };
        for segment in rest {
            let head = head_type_name(&cur);
            cur = self.field_type(&head, segment)?;
        }
        Some(self.expand(&cur))
    }
}

/// The leading type name of an expanded type text (`HashMap<K,V>` →
/// `HashMap`).
pub fn head_type_name(ty: &str) -> String {
    ty.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect()
}

/// The binding name of a `let [mut] name = ...` statement, if `stmt`
/// is one (used by the guard-scope scans).
pub fn let_bound_name(stmt: &[crate::ast::Tree]) -> Option<String> {
    use crate::ast::Tree;
    let mut i = 0;
    if stmt.first().and_then(Tree::as_ident) != Some("let") {
        return None;
    }
    i += 1;
    if stmt.get(i).and_then(Tree::as_ident) == Some("mut") {
        i += 1;
    }
    stmt.get(i).and_then(Tree::as_ident).map(str::to_owned)
}

/// A function's identity in a call-graph table: `(impl owner, name)`.
pub type FnKey = (Option<String>, String);

/// The [`FnKey`]s a call/method site may statically resolve to:
/// `self.m()` via the caller's owner, `Self::f` / `Type::f` paths,
/// free functions, and field/parameter receivers via [`TypeEnv`].
/// Unresolvable receivers (locals, call results) contribute nothing.
pub fn callee_keys(site: &crate::ast::Site, caller: &FnDef, env: &TypeEnv) -> Vec<FnKey> {
    use crate::ast::Site;
    match site {
        Site::Call { path, .. } => match path.as_slice() {
            [name] => vec![(None, name.clone())],
            [ty, name] if ty == "Self" => vec![(caller.owner.clone(), name.clone())],
            [ty, name] if ty.chars().next().is_some_and(char::is_uppercase) => {
                vec![(Some(ty.clone()), name.clone())]
            }
            _ => Vec::new(),
        },
        Site::Method { name, recv, .. } => {
            if recv == &["self".to_owned()] {
                vec![(caller.owner.clone(), name.clone())]
            } else if let Some(ty) = env.resolve_chain(recv, caller) {
                vec![(Some(head_type_name(&ty)), name.clone())]
            } else {
                Vec::new()
            }
        }
        _ => Vec::new(),
    }
}

/// Runs every AST rule over the workspace.
pub fn run_ast_rules(ws: &AstWorkspace, baseline: &Baseline) -> Vec<Violation> {
    let mut v = Vec::new();
    v.extend(panics::lint_panic_ratchet(ws, baseline));
    v.extend(blocking::lint_blocking(ws));
    v.extend(lock_order::lint_lock_order(ws));
    v.extend(restricted::lint_restricted_calls(ws));
    v.extend(headers::lint_crate_headers(ws));
    v.extend(dispatch::lint_dispatch_coverage(ws));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotation_grammar() {
        let comments = vec![
            (1, " audit: infallible — length checked above".to_owned()),
            (2, " audit: infallible -- ascii dashes fine".to_owned()),
            (3, " audit: infallible".to_owned()),
            (4, " audit: sorcery — no such key".to_owned()),
            (5, " plain comment".to_owned()),
        ];
        let (ok, bad) = parse_annotations(&comments);
        assert_eq!(ok.len(), 2);
        assert_eq!(ok[0].reason, "length checked above");
        assert_eq!(bad.len(), 2);
        assert!(bad[0].1.contains("missing"));
        assert!(bad[1].1.contains("unknown annotation key"));
    }

    #[test]
    fn type_env_resolution() {
        use crate::ast::AstFile;
        let f = AstFile::parse(
            "crates/net/src/x.rs",
            "type ConnMap = Arc<Mutex<HashMap<ConnId, ConnShared>>>;\nstruct Host { conns: ConnMap }\nimpl Host { fn go(&self, conn: &PollConn) {} }\nstruct PollConn { outbox: Arc<Mutex<Outbox>> }\n",
        )
        .expect("parses");
        let env = TypeEnv::from_files(std::iter::once(&f));
        let go = &f.fns[0];
        assert_eq!(
            env.resolve_chain(&["self".into(), "conns".into()], go).as_deref(),
            Some("Mutex<HashMap<ConnId,ConnShared>>")
        );
        assert_eq!(
            env.resolve_chain(&["conn".into(), "outbox".into()], go).as_deref(),
            Some("Mutex<Outbox>")
        );
        assert_eq!(env.resolve_chain(&["local".into(), "outbox".into()], go), None);
    }
}
