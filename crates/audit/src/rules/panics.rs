//! Rule `panic-ratchet`: panic-freedom over the hot crates.
//!
//! The server/net/wire crates are the components that must never die
//! (the paper's central coordinator), so every potential panic in their
//! non-test code is accounted for: an `unwrap`/`expect` call, a
//! `panic!`/`unreachable!`/`todo!`/`unimplemented!` macro, or a direct
//! index expression either carries an `// audit: infallible — <reason>`
//! annotation, or counts against the committed
//! [`audit-baseline.toml`](crate::baseline). The baseline may only
//! shrink: a count above it is a regression, a count below it is a
//! stale baseline that must be lowered so the improvement locks in.

use std::collections::BTreeMap;

use crate::ast::{sites_in, AstFile, AstWorkspace, Site};
use crate::baseline::{Baseline, BASELINE_PATH};
use crate::lints::Violation;
use crate::rules::{in_ranges, parse_annotations, ratcheted_crate, test_line_ranges};

/// One unannotated potential-panic site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicSite {
    /// Ratcheted crate the site belongs to.
    pub crate_name: &'static str,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// What the site is (`unwrap`, `expect`, `panic!`, `index`, ...).
    pub what: String,
}

/// Panic-site classification for one extracted [`Site`].
fn classify(site: &Site) -> Option<String> {
    match site {
        Site::Method { name, .. } if name == "unwrap" || name == "expect" => Some(name.clone()),
        Site::MacroUse { name, .. }
            if matches!(name.as_str(), "panic" | "unreachable" | "todo" | "unimplemented") =>
        {
            Some(format!("{name}!"))
        }
        Site::Index { .. } => Some("index".into()),
        _ => None,
    }
}

/// All unannotated panic sites in the non-test code of the ratcheted
/// crates, in path/line order. This is what the ratchet counts; the
/// `--panic-counts` flag of the binary prints it.
pub fn unannotated_panic_sites(ws: &AstWorkspace) -> Vec<PanicSite> {
    let mut out = Vec::new();
    for file in &ws.files {
        let Some(crate_name) = ratcheted_crate(&file.path) else { continue };
        let (annotations, _) = parse_annotations(&file.comments);
        let suppressed: Vec<u32> =
            annotations.iter().filter(|a| a.key == "infallible").map(|a| a.line).collect();
        for f in file.fns.iter().filter(|f| !f.in_test) {
            for site in sites_in(&f.body) {
                let Some(what) = classify(&site) else { continue };
                let line = site.line();
                if suppressed.contains(&line) || suppressed.contains(&(line.saturating_sub(1))) {
                    continue;
                }
                out.push(PanicSite { crate_name, file: file.path.clone(), line, what });
            }
        }
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out.dedup();
    out
}

/// Annotation-hygiene pass for one file: malformed annotations, and
/// `infallible` annotations that suppress no panic site. Annotations
/// inside test code are ignored entirely.
fn annotation_violations(file: &AstFile) -> Vec<Violation> {
    let mut v = Vec::new();
    let test_ranges = test_line_ranges(file);
    let (annotations, malformed) = parse_annotations(&file.comments);
    for (line, problem) in malformed {
        if in_ranges(&test_ranges, line) {
            continue;
        }
        v.push(Violation {
            rule: "audit-annotation",
            file: file.path.clone(),
            detail: format!("line {line}: {problem}"),
        });
    }
    // A non-test `infallible` annotation must sit on a panic site's
    // line or the line directly above one.
    let mut panic_lines = Vec::new();
    for f in file.fns.iter().filter(|f| !f.in_test) {
        for site in sites_in(&f.body) {
            if classify(&site).is_some() {
                panic_lines.push(site.line());
            }
        }
    }
    for ann in annotations.iter().filter(|a| a.key == "infallible") {
        if in_ranges(&test_ranges, ann.line) {
            continue;
        }
        if !panic_lines.iter().any(|&l| l == ann.line || l == ann.line + 1) {
            v.push(Violation {
                rule: "audit-annotation",
                file: file.path.clone(),
                detail: format!(
                    "line {}: `audit: infallible` annotation suppresses no panic site (dangling)",
                    ann.line
                ),
            });
        }
    }
    v
}

/// Rule `panic-ratchet` (plus `audit-annotation` hygiene): compares the
/// per-crate unannotated panic counts against the committed baseline.
pub fn lint_panic_ratchet(ws: &AstWorkspace, baseline: &Baseline) -> Vec<Violation> {
    let mut v = Vec::new();
    for file in &ws.files {
        if ratcheted_crate(&file.path).is_some() {
            v.extend(annotation_violations(file));
        }
    }
    let sites = unannotated_panic_sites(ws);
    let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    for (crate_name, _) in super::RATCHETED_CRATES {
        counts.insert(crate_name, 0);
    }
    for site in &sites {
        *counts.entry(site.crate_name).or_insert(0) += 1;
    }
    for (crate_name, actual) in &counts {
        let allowed = baseline.allowance(crate_name);
        if *actual > allowed {
            let worst: Vec<String> = sites
                .iter()
                .filter(|s| s.crate_name == *crate_name)
                .rev()
                .take(8)
                .map(|s| format!("{}:{} ({})", s.file, s.line, s.what))
                .collect();
            v.push(Violation {
                rule: "panic-ratchet",
                file: BASELINE_PATH.into(),
                detail: format!(
                    "{crate_name} has {actual} unannotated panic site(s), baseline allows \
                     {allowed} — annotate them `// audit: infallible — <reason>` or remove them \
                     (the baseline only shrinks); recent sites: {}",
                    worst.join(", ")
                ),
            });
        } else if *actual < allowed {
            v.push(Violation {
                rule: "panic-ratchet",
                file: BASELINE_PATH.into(),
                detail: format!(
                    "stale baseline: {crate_name} has {actual} unannotated panic site(s) but the \
                     baseline still allows {allowed} — lower it to {actual} so the improvement \
                     cannot regress"
                ),
            });
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> AstWorkspace {
        let sources: Vec<(String, String)> =
            files.iter().map(|(p, t)| ((*p).to_owned(), (*t).to_owned())).collect();
        AstWorkspace::parse(&sources).expect("parses")
    }

    fn baseline(net: u64) -> Baseline {
        let mut b = Baseline::default();
        b.unannotated_panics.insert("cosoft-net".into(), net);
        b
    }

    #[test]
    fn counts_unannotated_sites() {
        let w = ws(&[(
            "crates/net/src/x.rs",
            "fn f(v: Vec<u8>) {\n    let a = v.first().unwrap();\n    let b = v[0];\n    panic!(\"boom\");\n}\n",
        )]);
        let sites = unannotated_panic_sites(&w);
        assert_eq!(sites.len(), 3);
        assert!(lint_panic_ratchet(&w, &baseline(3)).is_empty());
    }

    #[test]
    fn growth_rejected_shrink_demanded() {
        let w = ws(&[("crates/net/src/x.rs", "fn f(v: Vec<u8>) { v.first().unwrap(); }\n")]);
        let grow = lint_panic_ratchet(&w, &baseline(0));
        assert!(grow
            .iter()
            .any(|v| v.rule == "panic-ratchet" && v.detail.contains("baseline allows 0")));
        let stale = lint_panic_ratchet(&w, &baseline(5));
        assert!(stale
            .iter()
            .any(|v| v.rule == "panic-ratchet" && v.detail.contains("stale baseline")));
        assert!(lint_panic_ratchet(&w, &baseline(1)).is_empty());
    }

    #[test]
    fn annotations_suppress_and_must_be_wellformed() {
        let annotated = ws(&[(
            "crates/net/src/x.rs",
            "fn f(v: Vec<u8>) {\n    // audit: infallible — checked non-empty by caller\n    v.first().unwrap();\n}\n",
        )]);
        assert!(unannotated_panic_sites(&annotated).is_empty());
        assert!(lint_panic_ratchet(&annotated, &baseline(0)).is_empty());

        let missing_reason = ws(&[(
            "crates/net/src/x.rs",
            "fn f(v: Vec<u8>) {\n    // audit: infallible\n    v.first().unwrap();\n}\n",
        )]);
        let v = lint_panic_ratchet(&missing_reason, &baseline(1));
        assert!(v.iter().any(|v| v.rule == "audit-annotation" && v.detail.contains("missing")));

        let dangling = ws(&[(
            "crates/net/src/x.rs",
            "// audit: infallible — suppresses nothing\nfn f() {}\n",
        )]);
        let v = lint_panic_ratchet(&dangling, &baseline(0));
        assert!(v.iter().any(|v| v.rule == "audit-annotation" && v.detail.contains("dangling")));
    }

    #[test]
    fn test_code_is_exempt() {
        let w = ws(&[(
            "crates/net/src/x.rs",
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    // audit: infallible\n    #[test]\n    fn t() { Some(1).unwrap(); let v = [0]; v[0]; panic!(\"x\"); }\n}\n",
        )]);
        assert!(unannotated_panic_sites(&w).is_empty());
        assert!(lint_panic_ratchet(&w, &Baseline::default()).is_empty());
    }

    #[test]
    fn non_ratcheted_paths_do_not_count() {
        let w = ws(&[
            ("crates/net/tests/e2e.rs", "fn t() { Some(1).unwrap(); }\n"),
            ("crates/core/src/sim.rs", "fn f() { Some(1).unwrap(); }\n"),
        ]);
        assert!(unannotated_panic_sites(&w).is_empty());
    }
}
