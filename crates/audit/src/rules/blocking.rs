//! Rule `blocking-call` / `lock-across-write`: the poll-loop
//! invariants from the readiness-driven net layer (DESIGN.md §9),
//! checked mechanically instead of by review.
//!
//! A fixed pool of poll threads owns every socket; if one of them
//! blocks, every connection on that thread stalls. The rule walks the
//! static call graph reachable from `PollThread::run` (over the
//! non-test code of `crates/net/src/`) and rejects:
//!
//! * `std::thread::sleep` — the poll loop must park on its waker, not
//!   sleep-poll (`Condvar::wait_timeout` is fine: it is bounded and
//!   wakeable);
//! * blocking channel `recv` — the loop drains commands with
//!   `try_recv`; an unbounded `recv` deadlocks teardown;
//! * mutex guards held across socket writes (`write`/`write_all`/
//!   `write_vectored`) — a slow peer would turn a shared lock into a
//!   transport-wide stall. The one deliberate case (the outbox guard
//!   across a vectored flush, where the write buffers borrow the
//!   guard) carries an `// audit: lock-across-write — <reason>`
//!   annotation.
//!
//! Call edges are resolved statically: `self.method()` through the
//! impl owner, `Type::method` / `Self::method` paths, free functions,
//! and field/parameter receivers through [`TypeEnv`]. Receivers the
//! environment cannot see (locals, iterator chains) contribute no
//! edge — the lint is deliberately underapproximate about *edges* but
//! exact about the deny-listed *calls* it finds in reachable bodies.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::ast::{shallow_sites, split_statements, AstWorkspace, Delim, FnDef, Site, Tree};
use crate::lints::Violation;
use crate::rules::{callee_keys, parse_annotations, FnKey, TypeEnv};

/// Path prefix of the sources the rule covers.
const NET_SRC: &str = "crates/net/src/";

/// The root of the walk: `PollThread::run`.
const ROOT: (&str, &str) = ("PollThread", "run");

/// Socket-write method names a held lock must not span.
const WRITE_METHODS: &[&str] = &["write", "write_all", "write_vectored"];

/// One function in the call-graph table.
struct FnNode<'a> {
    file: &'a str,
    def: &'a FnDef,
}

/// Rule `blocking-call`: see the module docs.
pub fn lint_blocking(ws: &AstWorkspace) -> Vec<Violation> {
    let net_files: Vec<_> = ws.files.iter().filter(|f| f.path.starts_with(NET_SRC)).collect();
    let env = TypeEnv::from_files(net_files.iter().copied());

    // Function table over non-test net code.
    let mut nodes: Vec<FnNode<'_>> = Vec::new();
    let mut by_key: HashMap<FnKey, Vec<usize>> = HashMap::new();
    for file in &net_files {
        for def in file.fns.iter().filter(|f| !f.in_test) {
            let idx = nodes.len();
            nodes.push(FnNode { file: &file.path, def });
            by_key.entry((def.owner.clone(), def.name.clone())).or_default().push(idx);
        }
    }
    let resolve = |site: &Site, caller: &FnDef| -> Vec<usize> {
        let keys: Vec<FnKey> = callee_keys(site, caller, &env);
        keys.iter().flat_map(|k| by_key.get(k).into_iter().flatten().copied()).collect()
    };

    // Reachability from PollThread::run.
    let Some(roots) = by_key.get(&(Some(ROOT.0.to_owned()), ROOT.1.to_owned())) else {
        return Vec::new();
    };
    let mut reachable: HashSet<usize> = HashSet::new();
    let mut queue: VecDeque<usize> = roots.iter().copied().collect();
    while let Some(idx) = queue.pop_front() {
        if !reachable.insert(idx) {
            continue;
        }
        for site in crate::ast::sites_in(&nodes[idx].def.body) {
            for callee in resolve(&site, nodes[idx].def) {
                if !reachable.contains(&callee) {
                    queue.push_back(callee);
                }
            }
        }
    }

    // Transitive does-this-function-write summaries (fixpoint).
    let mut writes: Vec<bool> = nodes
        .iter()
        .map(|n| {
            crate::ast::sites_in(&n.def.body).iter().any(
                |s| matches!(s, Site::Method { name, .. } if WRITE_METHODS.contains(&name.as_str())),
            )
        })
        .collect();
    loop {
        let mut changed = false;
        for idx in 0..nodes.len() {
            if writes[idx] {
                continue;
            }
            let hit = crate::ast::sites_in(&nodes[idx].def.body)
                .iter()
                .any(|s| resolve(s, nodes[idx].def).iter().any(|c| writes[*c]));
            if hit {
                writes[idx] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Per-file lock-across-write annotations.
    let mut annotated: HashMap<&str, Vec<u32>> = HashMap::new();
    for file in &net_files {
        let (anns, _) = parse_annotations(&file.comments);
        annotated.insert(
            file.path.as_str(),
            anns.iter().filter(|a| a.key == "lock-across-write").map(|a| a.line).collect(),
        );
    }

    let mut violations = Vec::new();
    let mut ordered: Vec<usize> = reachable.iter().copied().collect();
    ordered.sort_unstable();
    for idx in ordered {
        let node = &nodes[idx];
        let label = match &node.def.owner {
            Some(o) => format!("{o}::{}", node.def.name),
            None => node.def.name.clone(),
        };
        for site in crate::ast::sites_in(&node.def.body) {
            match &site {
                Site::Call { path, .. }
                    if path.ends_with(&["thread".to_owned(), "sleep".to_owned()])
                        || path.as_slice() == ["sleep".to_owned()] =>
                {
                    violations.push(Violation {
                        rule: "blocking-call",
                        file: node.file.to_owned(),
                        detail: format!(
                            "line {}: `{}` calls std::thread::sleep, reachable from \
                             PollThread::run — park on the waker instead",
                            site.line(),
                            label
                        ),
                    });
                }
                Site::Method { name, .. } if name == "recv" => {
                    violations.push(Violation {
                        rule: "blocking-call",
                        file: node.file.to_owned(),
                        detail: format!(
                            "line {}: `{}` calls blocking `recv()`, reachable from \
                             PollThread::run — use try_recv/recv_timeout",
                            site.line(),
                            label
                        ),
                    });
                }
                _ => {}
            }
        }
        scan_lock_across_write(
            &node.def.body,
            node,
            &label,
            &mut Vec::new(),
            &resolve,
            &writes,
            annotated.get(node.file).map(Vec::as_slice).unwrap_or(&[]),
            &mut violations,
        );
    }
    violations.sort_by(|a, b| (&a.file, &a.detail).cmp(&(&b.file, &b.detail)));
    violations.dedup();
    violations
}

/// A mutex guard bound by `let` and still live in the current scope.
#[derive(Clone)]
struct Guard {
    name: String,
    line: u32,
}

/// Scans a block statement-by-statement, tracking live guards, and
/// reports socket writes (direct or via a transitively-writing callee)
/// performed while any guard is held.
#[allow(clippy::too_many_arguments)]
fn scan_lock_across_write(
    trees: &[Tree],
    node: &FnNode<'_>,
    label: &str,
    active: &mut Vec<Guard>,
    resolve: &dyn Fn(&Site, &FnDef) -> Vec<usize>,
    writes: &[bool],
    annotated: &[u32],
    out: &mut Vec<Violation>,
) {
    for stmt in split_statements(trees) {
        // `drop(guard)` releases.
        if let [Tree::Ident(d, _), Tree::Group(Delim::Paren, args, _)] = stmt {
            if d == "drop" {
                if let [Tree::Ident(name, _)] = args.as_slice() {
                    active.retain(|g| &g.name != name);
                    continue;
                }
            }
        }
        let shallow = shallow_sites(stmt);
        let let_bound = super::let_bound_name(stmt);
        // Locks acquired earlier in this same statement count too
        // (`x.lock().write_all(..)` holds the guard during the write).
        let mut stmt_locks: Vec<Guard> = Vec::new();
        for site in &shallow {
            match site {
                Site::Method { name, .. } if name == "lock" => {
                    stmt_locks.push(Guard { name: String::new(), line: site.line() });
                }
                Site::Method { name, .. } if WRITE_METHODS.contains(&name.as_str()) => {
                    report_if_held(site.line(), active, &stmt_locks, label, node, annotated, out);
                }
                _ => {
                    let writes_transitively = resolve(site, node.def).iter().any(|c| writes[*c]);
                    if writes_transitively {
                        report_if_held(
                            site.line(),
                            active,
                            &stmt_locks,
                            label,
                            node,
                            annotated,
                            out,
                        );
                    }
                }
            }
        }
        if let (Some(name), Some(first)) = (let_bound, stmt_locks.first()) {
            active.push(Guard { name, line: first.line });
        }
        // Recurse into nested blocks (loop/if/match bodies) with the
        // guards currently live; guards bound inside stay inside.
        for t in stmt {
            if let Tree::Group(Delim::Brace, inner, _) = t {
                let mut scoped = active.clone();
                scan_lock_across_write(
                    inner,
                    node,
                    label,
                    &mut scoped,
                    resolve,
                    writes,
                    annotated,
                    out,
                );
            }
        }
    }
}

/// Emits a `lock-across-write` violation when any guard is live, unless
/// the guard acquisition or the write carries an annotation.
fn report_if_held(
    line: u32,
    active: &[Guard],
    stmt_locks: &[Guard],
    label: &str,
    node: &FnNode<'_>,
    annotated: &[u32],
    out: &mut Vec<Violation>,
) {
    let Some(guard) = active.first().or_else(|| stmt_locks.first()) else { return };
    let suppressed = [line, line.saturating_sub(1), guard.line, guard.line.saturating_sub(1)]
        .iter()
        .any(|l| annotated.contains(l));
    if suppressed {
        return;
    }
    out.push(Violation {
        rule: "lock-across-write",
        file: node.file.to_owned(),
        detail: format!(
            "line {line}: `{label}` performs a socket write while holding the lock acquired at \
             line {} — release the guard first, or annotate \
             `// audit: lock-across-write — <reason>`",
            guard.line
        ),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(src: &str) -> AstWorkspace {
        AstWorkspace::parse(&[("crates/net/src/poll.rs".to_owned(), src.to_owned())])
            .expect("parses")
    }

    const CLEAN_LOOP: &str = "
struct PollThread { cmds: Receiver<Cmd> }
impl PollThread {
    fn run(&mut self) {
        loop {
            match self.cmds.try_recv() { _other => {} }
            self.sweep();
        }
    }
    fn sweep(&mut self) {}
}
";

    #[test]
    fn clean_loop_passes() {
        assert!(lint_blocking(&ws(CLEAN_LOOP)).is_empty());
    }

    #[test]
    fn sleep_reachable_from_run_is_flagged() {
        let src = "
impl PollThread {
    fn run(&mut self) { self.backoff(); }
    fn backoff(&mut self) { std::thread::sleep(Duration::from_millis(1)); }
}
";
        let v = lint_blocking(&ws(src));
        assert!(
            v.iter().any(|v| v.rule == "blocking-call" && v.detail.contains("thread::sleep")),
            "{v:?}"
        );
    }

    #[test]
    fn sleep_unreachable_is_ignored() {
        let src = "
impl PollThread {
    fn run(&mut self) {}
}
fn reconnect_backoff() { std::thread::sleep(Duration::from_millis(1)); }
";
        assert!(lint_blocking(&ws(src)).is_empty());
    }

    #[test]
    fn blocking_recv_is_flagged_try_recv_is_not() {
        let src = "
impl PollThread {
    fn run(&mut self) { let _ = self.cmds.recv(); let _ = self.cmds.try_recv(); }
}
";
        let v = lint_blocking(&ws(src));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].detail.contains("recv()"));
    }

    #[test]
    fn lock_held_across_write_is_flagged() {
        let src = "
struct PollThread { conn: PollConn }
struct PollConn { outbox: Arc<Mutex<Outbox>>, stream: TcpStream }
impl PollThread {
    fn run(&mut self) { self.flush(); }
    fn flush(&mut self) {
        let ob = self.conn.outbox.lock();
        loop {
            let _ = self.conn.stream.write_vectored(&[]);
        }
    }
}
";
        let v = lint_blocking(&ws(src));
        assert!(v.iter().any(|v| v.rule == "lock-across-write"), "{v:?}");
    }

    #[test]
    fn annotation_or_drop_suppresses() {
        let annotated = "
struct PollThread { conn: PollConn }
struct PollConn { outbox: Arc<Mutex<Outbox>>, stream: TcpStream }
impl PollThread {
    fn run(&mut self) { self.flush(); }
    fn flush(&mut self) {
        // audit: lock-across-write — slices borrow the guard
        let ob = self.conn.outbox.lock();
        let _ = self.conn.stream.write_vectored(&[]);
    }
}
";
        assert!(lint_blocking(&ws(annotated)).is_empty());
        let dropped = "
struct PollThread { conn: PollConn }
struct PollConn { outbox: Arc<Mutex<Outbox>>, stream: TcpStream }
impl PollThread {
    fn run(&mut self) {
        let ob = self.conn.outbox.lock();
        drop(ob);
        let _ = self.conn.stream.write_vectored(&[]);
    }
}
";
        assert!(lint_blocking(&ws(dropped)).is_empty());
    }

    #[test]
    fn write_via_transitive_callee_is_flagged() {
        let src = "
struct PollThread { conn: PollConn }
struct PollConn { outbox: Arc<Mutex<Outbox>>, stream: TcpStream }
impl PollThread {
    fn run(&mut self) {
        let ob = self.conn.outbox.lock();
        self.emit();
    }
    fn emit(&mut self) { let _ = self.conn.stream.write_all(&[]); }
}
";
        let v = lint_blocking(&ws(src));
        assert!(v.iter().any(|v| v.rule == "lock-across-write"), "{v:?}");
    }
}
