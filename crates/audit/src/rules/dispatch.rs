//! Rule `dispatch-coverage` (AST port): every `Message` variant is
//! handled by name in the server dispatch, and no `match` that
//! dispatches on `Message` contains a wildcard or lowercase-binding arm
//! that could silently swallow a kind.
//!
//! The variant list comes from the parsed `Message` enum declaration
//! rather than a text scan, and arm analysis runs on match bodies in
//! the token stream — so `Message::X` in a doc comment no longer
//! counts as coverage, and a `_ =>` in a comment no longer fails the
//! build. Matches over other types keep their wildcard arms; only
//! matches whose patterns name `Message` variants are constrained.

use crate::ast::{AstWorkspace, Delim, Tree};
use crate::lints::Violation;

/// Where the `Message` enum is declared.
const MESSAGE_RS: &str = "crates/wire/src/message.rs";
/// Where the server dispatch lives.
const SERVER_RS: &str = "crates/server/src/server.rs";

/// Message kinds the server dispatch is allowed to leave unhandled.
/// Empty today: every variant must appear by name in `server.rs`
/// (server-to-client-only kinds in the counted `unexpected` arm).
pub const DISPATCH_ALLOWLIST: &[&str] = &[];

/// Rule `dispatch-coverage`: see the module docs.
pub fn lint_dispatch_coverage(ws: &AstWorkspace) -> Vec<Violation> {
    let (Some(message), Some(server)) = (ws.file(MESSAGE_RS), ws.file(SERVER_RS)) else {
        return Vec::new();
    };
    let Some(variants) =
        message.enums.iter().find(|e| e.name == "Message").map(|e| e.variants.clone())
    else {
        return vec![Violation {
            rule: "dispatch-coverage",
            file: MESSAGE_RS.into(),
            detail: "no `Message` enum declaration found".into(),
        }];
    };
    let aliases = message_aliases(&server.trees);
    let mut violations = Vec::new();
    let refs = message_variant_refs(&server.trees, &aliases);
    for variant in &variants {
        if DISPATCH_ALLOWLIST.contains(&variant.as_str()) {
            continue;
        }
        if !refs.contains(variant) {
            violations.push(Violation {
                rule: "dispatch-coverage",
                file: SERVER_RS.into(),
                detail: format!("variant `{variant}` is not handled by name in the dispatch"),
            });
        }
    }
    check_match_arms(&server.trees, &aliases, &mut violations);
    violations
}

/// `use Message as X;` aliases in a token forest, plus `Message`
/// itself.
fn message_aliases(trees: &[Tree]) -> Vec<String> {
    let mut aliases = vec!["Message".to_owned()];
    collect_aliases(trees, &mut aliases);
    aliases
}

fn collect_aliases(trees: &[Tree], out: &mut Vec<String>) {
    for window_start in 0..trees.len() {
        if let [Tree::Ident(m, _), Tree::Ident(as_kw, _), Tree::Ident(alias, _)] =
            &trees[window_start..trees.len().min(window_start + 3)]
        {
            if m == "Message" && as_kw == "as" && !out.contains(alias) {
                out.push(alias.clone());
            }
        }
    }
    for t in trees {
        if let Tree::Group(_, inner, _) = t {
            collect_aliases(inner, out);
        }
    }
}

/// Every `Message::Variant` (or alias) reference in a token forest.
fn message_variant_refs(trees: &[Tree], aliases: &[String]) -> Vec<String> {
    let mut refs = Vec::new();
    collect_refs(trees, aliases, &mut refs);
    refs
}

fn collect_refs(trees: &[Tree], aliases: &[String], out: &mut Vec<String>) {
    let mut i = 0;
    while i < trees.len() {
        if let Tree::Ident(base, _) = &trees[i] {
            if aliases.iter().any(|a| a == base)
                && trees.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && trees.get(i + 2).is_some_and(|t| t.is_punct(':'))
            {
                if let Some(Tree::Ident(variant, _)) = trees.get(i + 3) {
                    if variant.chars().next().is_some_and(char::is_uppercase)
                        && !out.contains(variant)
                    {
                        out.push(variant.clone());
                    }
                }
                i += 3;
                continue;
            }
        }
        if let Tree::Group(_, inner, _) = &trees[i] {
            collect_refs(inner, aliases, out);
        }
        i += 1;
    }
}

/// Finds `match` bodies whose arm patterns name `Message` variants and
/// flags wildcard/binding arms inside them; recurses everywhere.
fn check_match_arms(trees: &[Tree], aliases: &[String], out: &mut Vec<Violation>) {
    let mut i = 0;
    while i < trees.len() {
        if trees[i].as_ident() == Some("match") {
            // The match body is the first top-level brace group after
            // the scrutinee (struct literals cannot appear unparenthesized
            // in a scrutinee, so this group is the body).
            let mut j = i + 1;
            while j < trees.len() && !matches!(trees[j], Tree::Group(Delim::Brace, ..)) {
                j += 1;
            }
            if let Some(Tree::Group(Delim::Brace, body, _)) = trees.get(j) {
                analyze_match_body(body, aliases, out);
            }
        }
        if let Tree::Group(_, inner, _) = &trees[i] {
            check_match_arms(inner, aliases, out);
        }
        i += 1;
    }
}

/// One match body: splits arms at top-level `pattern => body` pairs and
/// flags wildcard/binding arms when any sibling arm names a `Message`
/// variant.
fn analyze_match_body(body: &[Tree], aliases: &[String], out: &mut Vec<Violation>) {
    let mut arms: Vec<&[Tree]> = Vec::new(); // pattern token runs
    let mut start = 0usize;
    let mut i = 0usize;
    while i < body.len() {
        // `=>` at top level ends a pattern.
        if body[i].is_punct('=') && body.get(i + 1).is_some_and(|t| t.is_punct('>')) {
            arms.push(&body[start..i]);
            // Skip the arm body: a brace group, or tokens until a
            // top-level comma.
            i += 2;
            if matches!(body.get(i), Some(Tree::Group(Delim::Brace, ..))) {
                i += 1;
                if body.get(i).is_some_and(|t| t.is_punct(',')) {
                    i += 1;
                }
            } else {
                while i < body.len() && !body[i].is_punct(',') {
                    i += 1;
                }
                i += 1;
            }
            start = i;
            continue;
        }
        i += 1;
    }
    let dispatches_message = arms.iter().any(|pat| {
        pat.windows(4).any(|w| {
            matches!(&w[0], Tree::Ident(base, _) if aliases.iter().any(|a| a == base))
                && w[1].is_punct(':')
                && w[2].is_punct(':')
                && matches!(&w[3], Tree::Ident(v, _) if v.chars().next().is_some_and(char::is_uppercase))
        })
    });
    if !dispatches_message {
        return;
    }
    for pat in &arms {
        // Strip a leading `|` and any `if` guard from the pattern run.
        let guard_pos = pat.iter().position(|t| t.as_ident() == Some("if")).unwrap_or(pat.len());
        let pat = &pat[..guard_pos];
        if let [Tree::Ident(name, line)] = pat {
            if name.chars().next().is_some_and(|c| c.is_ascii_lowercase() || c == '_') {
                let kind = if name == "_" { "wildcard" } else { "binding" };
                out.push(Violation {
                    rule: "dispatch-coverage",
                    file: SERVER_RS.into(),
                    detail: format!(
                        "line {line}: {kind} arm `{name} =>` in a match over `Message` can \
                         silently drop a message kind"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ENUM: &str = "
pub enum Message {
    Register { user: u64 },
    Deregister,
}
";

    fn ws(server: &str) -> AstWorkspace {
        AstWorkspace::parse(&[
            ("crates/wire/src/message.rs".to_owned(), ENUM.to_owned()),
            ("crates/server/src/server.rs".to_owned(), server.to_owned()),
        ])
        .expect("parses")
    }

    #[test]
    fn full_coverage_passes() {
        let w = ws(
            "fn handle(m: Message) {\n    match m {\n        Message::Register { user } => go(user),\n        Message::Deregister => stop(),\n    }\n}\n",
        );
        assert!(lint_dispatch_coverage(&w).is_empty());
    }

    #[test]
    fn missing_variant_is_flagged() {
        let w = ws("fn handle(m: Message) {\n    match m {\n        Message::Register { user } => go(user),\n        other => drop_it(other),\n    }\n}\n");
        let v = lint_dispatch_coverage(&w);
        assert!(v.iter().any(|v| v.detail.contains("`Deregister`")), "{v:?}");
        assert!(v.iter().any(|v| v.detail.contains("binding arm `other =>`")), "{v:?}");
    }

    #[test]
    fn wildcard_arm_is_flagged() {
        let w = ws(
            "fn handle(m: Message) {\n    match m {\n        Message::Register { user } => go(user),\n        Message::Deregister => stop(),\n        _ => {}\n    }\n}\n",
        );
        let v = lint_dispatch_coverage(&w);
        assert!(v.iter().any(|v| v.detail.contains("wildcard arm `_ =>`")), "{v:?}");
    }

    #[test]
    fn non_message_matches_keep_wildcards() {
        let w = ws(
            "fn handle(m: Message) {\n    match m { Message::Register { user } => go(user), Message::Deregister => stop() }\n    match other() { Some(x) => use_it(x), _ => {} }\n}\n",
        );
        assert!(lint_dispatch_coverage(&w).is_empty());
    }

    #[test]
    fn comments_do_not_count_as_coverage() {
        let w = ws(
            "// Message::Deregister is mentioned here only.\nfn handle(m: Message) {\n    match m {\n        Message::Register { user } => go(user),\n        Message::Deregister => stop(),\n    }\n}\n// match m { _ => {} } in a comment is fine\n",
        );
        assert!(lint_dispatch_coverage(&w).is_empty());
    }

    #[test]
    fn alias_is_honored() {
        let w = ws(
            "use cosoft_wire::Message as Msg;\nfn handle(m: Msg) {\n    match m {\n        Msg::Register { user } => go(user),\n        Msg::Deregister => stop(),\n    }\n}\n",
        );
        assert!(lint_dispatch_coverage(&w).is_empty());
    }
}
