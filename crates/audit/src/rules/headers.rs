//! Rule `crate-header` (AST port): every crate root carries the
//! workspace lint headers `#![forbid(unsafe_code)]` and
//! `#![deny(missing_docs)]`.
//!
//! Unlike the text-lint predecessor, which did a substring search, this
//! port checks the file's actual inner attributes — a header mentioned
//! in a doc comment or commented out no longer satisfies the rule.

use crate::ast::AstWorkspace;
use crate::lints::Violation;

/// The inner attributes (normalized token text) every crate root must
/// carry.
pub const REQUIRED_HEADERS: &[&str] = &["forbid(unsafe_code)", "deny(missing_docs)"];

/// Rule `crate-header`: see the module docs. Applies to every
/// `src/lib.rs` in the workspace.
pub fn lint_crate_headers(ws: &AstWorkspace) -> Vec<Violation> {
    let mut violations = Vec::new();
    for file in &ws.files {
        if !file.path.ends_with("src/lib.rs") {
            continue;
        }
        for header in REQUIRED_HEADERS {
            if !file.inner_attrs.iter().any(|a| a == header) {
                violations.push(Violation {
                    rule: "crate-header",
                    file: file.path.clone(),
                    detail: format!("crate root lacks `#![{header}]`"),
                });
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> AstWorkspace {
        let sources: Vec<(String, String)> =
            files.iter().map(|(p, t)| ((*p).to_owned(), (*t).to_owned())).collect();
        AstWorkspace::parse(&sources).expect("parses")
    }

    #[test]
    fn present_headers_pass() {
        let w = ws(&[(
            "crates/net/src/lib.rs",
            "//! Docs.\n#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n",
        )]);
        assert!(lint_crate_headers(&w).is_empty());
    }

    #[test]
    fn missing_header_is_flagged() {
        let w = ws(&[("crates/net/src/lib.rs", "//! Docs.\n#![forbid(unsafe_code)]\n")]);
        let v = lint_crate_headers(&w);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("missing_docs"));
    }

    #[test]
    fn commented_out_header_does_not_count() {
        let w = ws(&[(
            "crates/net/src/lib.rs",
            "//! Mentions #![forbid(unsafe_code)] in docs.\n// #![deny(missing_docs)]\n",
        )]);
        assert_eq!(lint_crate_headers(&w).len(), 2);
    }

    #[test]
    fn non_roots_are_ignored() {
        let w = ws(&[("crates/net/src/tcp.rs", "fn f() {}\n")]);
        assert!(lint_crate_headers(&w).is_empty());
    }
}
