//! The COSOFT verification layer: workspace protocol lints, AST-based
//! source analyses, and a bounded-exhaustive schedule explorer.
//!
//! The repository's correctness story has three weak points that
//! ordinary unit tests do not cover:
//!
//! 1. **Cross-file protocol drift.** The [`cosoft_wire::Message`] enum,
//!    its codec tag table, the golden byte-vector suite, and the server
//!    dispatch in `crates/server/src/server.rs` must all enumerate the
//!    same 38 message kinds. Nothing in the type system ties them
//!    together across crates and test files, so a new variant can slip
//!    in with no wire tag, no golden vector, or a silent `_ =>` drop in
//!    the server. The [`lints`] module checks the literal wire tables
//!    textually; the [`rules`] module checks the syntactic legs
//!    (dispatch arms, restricted calls, crate headers) on a parsed AST.
//!
//! 2. **Runtime failure modes no test happens to hit.** A stray
//!    `unwrap` in the poll loop, a blocking call reachable from
//!    `PollThread::run`, or two mutexes acquired in opposite orders
//!    only bite under production interleavings. The [`ast`] module
//!    parses the whole workspace (hand-rolled lexer + item parser — no
//!    external syntax crate), and [`rules`] runs a panic-freedom
//!    ratchet against the committed `audit-baseline.toml`, a
//!    blocking-call lint over the call graph of the poll loop, and a
//!    lock-order cycle analysis over the static mutex-acquisition
//!    graph.
//!
//! 3. **Interleaving-dependent lock-table corruption.** The floor
//!    control algorithm (paper §4) holds locks across multi-client
//!    round trips; whether an invariant violation is reachable depends
//!    on the order clients act in. The [`explore`] module runs a
//!    bounded-exhaustive DFS over every interleaving of a small client
//!    population, checking the server-wide invariant pack after every
//!    step (`crates/server/tests/lock_model.rs` is the concrete model).
//!
//! All halves are pure: lints and rules map source text to violations,
//! the explorer maps a cloneable model to statistics or a
//! counterexample trace. All I/O lives in the `cosoft-audit` binary,
//! which `scripts/check.sh` and the CI `audit` job run against the
//! real workspace.
//!
//! [`cosoft_wire::Message`]: ../cosoft_wire/enum.Message.html

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod ast;
pub mod baseline;
pub mod explore;
pub mod lints;
pub mod rules;

pub use explore::{explore, ExploreError, ExploreLimits, ExploreStats, Model};
pub use lints::{run_all_lints, Violation, WorkspaceSources};
