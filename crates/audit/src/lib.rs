//! The COSOFT verification layer: workspace protocol lints and a
//! bounded-exhaustive schedule explorer.
//!
//! The repository's correctness story has two weak points that ordinary
//! unit tests do not cover:
//!
//! 1. **Cross-file protocol drift.** The [`cosoft_wire::Message`] enum,
//!    its codec tag table, the golden byte-vector suite, and the server
//!    dispatch in `crates/server/src/server.rs` must all enumerate the
//!    same 37 message kinds. Nothing in the type system ties them
//!    together across crates and test files, so a new variant can slip
//!    in with no wire tag, no golden vector, or a silent `_ =>` drop in
//!    the server. The [`lints`] module parses the actual sources and
//!    fails the build when any leg of that square diverges.
//!
//! 2. **Interleaving-dependent lock-table corruption.** The floor
//!    control algorithm (paper §4) holds locks across multi-client
//!    round trips; whether an invariant violation is reachable depends
//!    on the order clients act in. The [`explore`] module runs a
//!    bounded-exhaustive DFS over every interleaving of a small client
//!    population, checking the server-wide invariant pack after every
//!    step (`crates/server/tests/lock_model.rs` is the concrete model).
//!
//! Both halves are pure: lints map source text to violations, the
//! explorer maps a cloneable model to statistics or a counterexample
//! trace. All I/O lives in the `cosoft-audit` binary, which `scripts/
//! check.sh` and the CI `audit` job run against the real workspace.
//!
//! [`cosoft_wire::Message`]: ../cosoft_wire/enum.Message.html

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod explore;
pub mod lints;

pub use explore::{explore, ExploreError, ExploreLimits, ExploreStats, Model};
pub use lints::{run_all_lints, Violation, WorkspaceSources};
