//! Bounded-exhaustive schedule exploration.
//!
//! The floor-control algorithm (paper §4) is a distributed protocol:
//! locks are taken when an event is granted and released only after
//! every coupled instance reports `ExecuteDone`, so the server's lock
//! table, execution records, and registry evolve across multi-client
//! round trips. Whether an invariant violation is reachable depends on
//! the *order* those round trips interleave in — exactly what
//! example-based tests pin down to one schedule.
//!
//! [`explore`] enumerates every schedule instead: a depth-first search
//! over the tree of [`Model::actions`] choices, cloning the model at
//! each branch point, running [`Model::check`] after every applied
//! action and [`Model::at_quiescence`] at every terminal state. The
//! search is deterministic (no randomness, no time), so a reported
//! counterexample trace replays exactly.
//!
//! The model is generic: `crates/server/tests/lock_model.rs` wraps the
//! real `ServerCore` (which is `Clone` for this purpose), but anything
//! cloneable with enumerable actions fits — the engine itself knows
//! nothing about COSOFT.

use std::fmt;

/// A deterministic state machine the explorer can fork and step.
pub trait Model: Clone {
    /// One schedulable step (e.g. "client 2 delivers its ExecuteDone").
    type Action: Clone + fmt::Debug;

    /// The actions currently enabled. An empty vector means the state
    /// is quiescent (a maximal schedule ends here).
    fn actions(&self) -> Vec<Self::Action>;

    /// Applies one enabled action.
    fn apply(&mut self, action: &Self::Action);

    /// Invariant check, run after every applied action.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated invariant.
    fn check(&self) -> Result<(), String>;

    /// Terminal-state check, run when no actions remain (e.g. "all
    /// locks drained"). Defaults to no check.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated terminal condition.
    fn at_quiescence(&self) -> Result<(), String> {
        Ok(())
    }
}

/// Search bounds.
#[derive(Debug, Clone, Copy)]
pub struct ExploreLimits {
    /// Maximum schedule length; longer schedules are truncated (still
    /// counted, their terminal check skipped).
    pub max_depth: usize,
    /// Stop after this many complete schedules.
    pub max_schedules: u64,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        ExploreLimits { max_depth: 64, max_schedules: 1_000_000 }
    }
}

/// What a completed exploration covered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Distinct complete schedules (maximal or depth-truncated action
    /// sequences) explored.
    pub schedules: u64,
    /// Total actions applied (internal nodes of the schedule tree).
    pub steps: u64,
    /// Length of the longest schedule reached.
    pub max_depth_reached: usize,
    /// Whether the schedule cap stopped the search before exhaustion.
    pub hit_schedule_cap: bool,
    /// Whether any schedule was truncated by the depth bound.
    pub hit_depth_bound: bool,
}

/// A counterexample: the exact action sequence that led to a violated
/// invariant, plus the violation message.
#[derive(Debug, Clone)]
pub struct ExploreError {
    /// Debug-rendered actions from the initial state to the violation.
    pub trace: Vec<String>,
    /// The invariant's error message.
    pub message: String,
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "invariant violated: {}", self.message)?;
        writeln!(f, "schedule ({} steps):", self.trace.len())?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "  {:>3}. {step}", i + 1)?;
        }
        Ok(())
    }
}

/// Explores every schedule of `initial` within `limits`.
///
/// # Errors
///
/// Returns the first [`ExploreError`] counterexample encountered (DFS
/// order, so the first schedule lexicographically by action index).
pub fn explore<M: Model>(initial: &M, limits: ExploreLimits) -> Result<ExploreStats, ExploreError> {
    let mut stats = ExploreStats::default();
    let mut trace = Vec::new();
    initial.check().map_err(|message| ExploreError { trace: Vec::new(), message })?;
    dfs(initial, 0, limits, &mut stats, &mut trace)?;
    Ok(stats)
}

fn dfs<M: Model>(
    state: &M,
    depth: usize,
    limits: ExploreLimits,
    stats: &mut ExploreStats,
    trace: &mut Vec<String>,
) -> Result<(), ExploreError> {
    if stats.schedules >= limits.max_schedules {
        stats.hit_schedule_cap = true;
        return Ok(());
    }
    stats.max_depth_reached = stats.max_depth_reached.max(depth);
    let actions = state.actions();
    if actions.is_empty() {
        state.at_quiescence().map_err(|message| ExploreError { trace: trace.clone(), message })?;
        stats.schedules += 1;
        return Ok(());
    }
    if depth >= limits.max_depth {
        stats.hit_depth_bound = true;
        stats.schedules += 1;
        return Ok(());
    }
    for action in actions {
        let mut next = state.clone();
        next.apply(&action);
        stats.steps += 1;
        trace.push(format!("{action:?}"));
        next.check().map_err(|message| ExploreError { trace: trace.clone(), message })?;
        dfs(&next, depth + 1, limits, stats, trace)?;
        trace.pop();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// N independent counters, each stepped to a target: the schedule
    /// tree is every interleaving of the per-counter step sequences.
    #[derive(Clone)]
    struct Counters {
        values: Vec<u32>,
        target: u32,
        poison: Option<(usize, u32)>,
    }

    impl Model for Counters {
        type Action = usize;

        fn actions(&self) -> Vec<usize> {
            (0..self.values.len()).filter(|&i| self.values[i] < self.target).collect()
        }

        fn apply(&mut self, i: &usize) {
            self.values[*i] += 1;
        }

        fn check(&self) -> Result<(), String> {
            if let Some((i, bad)) = self.poison {
                if self.values[i] == bad {
                    return Err(format!("counter {i} reached poisoned value {bad}"));
                }
            }
            Ok(())
        }

        fn at_quiescence(&self) -> Result<(), String> {
            if self.values.iter().all(|&v| v == self.target) {
                Ok(())
            } else {
                Err("quiescent before every counter reached its target".into())
            }
        }
    }

    #[test]
    fn counts_every_interleaving() {
        // 2 counters × 2 steps: C(4,2) = 6 interleavings.
        let m = Counters { values: vec![0, 0], target: 2, poison: None };
        let stats = explore(&m, ExploreLimits::default()).unwrap();
        assert_eq!(stats.schedules, 6);
        assert_eq!(stats.max_depth_reached, 4);
        assert!(!stats.hit_schedule_cap);
        assert!(!stats.hit_depth_bound);
    }

    #[test]
    fn three_way_interleavings() {
        // 3 counters × 2 steps: 6!/(2!2!2!) = 90 interleavings.
        let m = Counters { values: vec![0, 0, 0], target: 2, poison: None };
        let stats = explore(&m, ExploreLimits::default()).unwrap();
        assert_eq!(stats.schedules, 90);
    }

    #[test]
    fn finds_planted_violation_with_trace() {
        let m = Counters { values: vec![0, 0], target: 3, poison: Some((1, 2)) };
        let err = explore(&m, ExploreLimits::default()).unwrap_err();
        assert!(err.message.contains("poisoned"));
        // The DFS-first trace stepping counter 1 twice must end 1, 1.
        assert_eq!(err.trace.last().unwrap(), "1");
        let display = err.to_string();
        assert!(display.contains("schedule ("), "{display}");
    }

    #[test]
    fn schedule_cap_truncates() {
        let m = Counters { values: vec![0, 0, 0], target: 3, poison: None };
        let stats = explore(&m, ExploreLimits { max_depth: 64, max_schedules: 10 }).unwrap();
        assert_eq!(stats.schedules, 10);
        assert!(stats.hit_schedule_cap);
    }

    #[test]
    fn depth_bound_counts_truncated_schedules() {
        let m = Counters { values: vec![0, 0], target: 5, poison: None };
        let stats = explore(&m, ExploreLimits { max_depth: 3, max_schedules: 1_000 }).unwrap();
        assert!(stats.hit_depth_bound);
        // 2 choices at each of 3 levels: 8 truncated schedules.
        assert_eq!(stats.schedules, 8);
    }
}
