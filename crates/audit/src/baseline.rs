//! The committed panic-freedom baseline (`audit-baseline.toml`).
//!
//! The ratchet rule counts unannotated panic sites per ratcheted crate
//! and compares them against this file. The comparison is exact in both
//! directions: a count above the baseline is a regression, a count
//! below it is a stale baseline (the PR that removed the panics must
//! also lower the number, so the improvement is locked in and cannot
//! silently regress back up to the old line).
//!
//! The file format is the small TOML subset the audit needs — one
//! `[unannotated-panics]` table of `crate = integer` entries plus `#`
//! comments — parsed here by hand because the workspace builds without
//! a TOML dependency.

use std::collections::BTreeMap;
use std::fmt;

/// Workspace-relative path of the baseline file.
pub const BASELINE_PATH: &str = "audit-baseline.toml";

/// Parsed baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Allowed unannotated panic-site count per crate name.
    pub unannotated_panics: BTreeMap<String, u64>,
}

/// A baseline file that failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineError {
    /// 1-based line of the problem.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} line {}: {}", BASELINE_PATH, self.line, self.message)
    }
}

impl Baseline {
    /// Parses the baseline file text.
    ///
    /// # Errors
    ///
    /// Unknown sections, non-integer values, and lines that are neither
    /// a section header, a `key = value` entry, a comment, nor blank.
    pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
        let mut baseline = Baseline::default();
        let mut section = String::new();
        for (i, raw) in text.lines().enumerate() {
            let lineno = (i + 1) as u32;
            let line = match raw.find('#') {
                Some(pos) => &raw[..pos],
                None => raw,
            };
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_owned();
                if section != "unannotated-panics" {
                    return Err(BaselineError {
                        line: lineno,
                        message: format!("unknown section `[{section}]`"),
                    });
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(BaselineError {
                    line: lineno,
                    message: format!("expected `key = value`, got `{line}`"),
                });
            };
            if section != "unannotated-panics" {
                return Err(BaselineError {
                    line: lineno,
                    message: "entry outside the `[unannotated-panics]` section".into(),
                });
            }
            let key = key.trim().trim_matches('"').to_owned();
            let value: u64 = value.trim().parse().map_err(|_| BaselineError {
                line: lineno,
                message: format!("value for `{key}` is not a non-negative integer"),
            })?;
            if baseline.unannotated_panics.insert(key.clone(), value).is_some() {
                return Err(BaselineError {
                    line: lineno,
                    message: format!("duplicate entry for `{key}`"),
                });
            }
        }
        Ok(baseline)
    }

    /// The baseline count for `crate_name` (absent means zero: a crate
    /// not listed has no panic allowance).
    pub fn allowance(&self, crate_name: &str) -> u64 {
        self.unannotated_panics.get(crate_name).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_counts_and_comments() {
        let b = Baseline::parse(
            "# header comment\n[unannotated-panics]\ncosoft-net = 3 # trailing\ncosoft-server = 12\n",
        )
        .expect("parses");
        assert_eq!(b.allowance("cosoft-net"), 3);
        assert_eq!(b.allowance("cosoft-server"), 12);
        assert_eq!(b.allowance("cosoft-wire"), 0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Baseline::parse("[other-section]\n").is_err());
        assert!(Baseline::parse("[unannotated-panics]\ncosoft-net = many\n").is_err());
        assert!(Baseline::parse("cosoft-net = 3\n").is_err());
        assert!(Baseline::parse("[unannotated-panics]\nwhat is this\n").is_err());
        assert!(Baseline::parse("[unannotated-panics]\na = 1\na = 2\n").is_err());
    }
}
