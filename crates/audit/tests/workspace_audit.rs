//! The audit gate, end to end: the real workspace must pass every
//! lint, and doctored copies of it must fail — proving the lints
//! actually bite on the sources they ship with, not just on toy
//! fixtures.

use std::path::Path;

use cosoft_audit::lints::{
    lint_crate_headers, lint_dispatch_coverage, lint_golden_coverage, lint_restricted_calls,
    lint_wire_tags,
};
use cosoft_audit::{run_all_lints, WorkspaceSources};

fn real_workspace() -> WorkspaceSources {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    WorkspaceSources::load(&root).expect("workspace readable")
}

#[test]
fn real_workspace_is_clean() {
    let ws = real_workspace();
    let violations = run_all_lints(&ws);
    assert!(
        violations.is_empty(),
        "workspace has lint violations:\n{}",
        violations.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}

/// The headline negative test: a `Message` variant added to the enum
/// without touching the codec, the golden suite, or the server dispatch
/// trips every leg of the four-way agreement.
#[test]
fn new_variant_without_support_fails_every_leg() {
    let mut ws = real_workspace();
    ws.message_rs = ws
        .message_rs
        .replace("pub enum Message {", "pub enum Message {\n    /// Doctored.\n    Gadget,");
    let violations = run_all_lints(&ws);
    for rule in ["enum-vs-kinds", "wire-tag", "golden-coverage", "dispatch-coverage"] {
        assert!(
            violations.iter().any(|v| v.rule == rule && v.detail.contains("Gadget")),
            "rule {rule} did not flag the doctored variant: {violations:?}"
        );
    }
}

#[test]
fn variant_without_golden_vector_fails() {
    let ws = real_workspace();
    // The golden table aliases `Message` as `M`; dropping the entry's
    // constructor removes the variant's only reference.
    let doctored = ws.golden_rs.replace("M::ExecuteDone", "M::ExecuteEvent");
    let violations = lint_golden_coverage(&ws.message_rs, &doctored);
    assert!(
        violations.iter().any(|v| v.detail.contains("`ExecuteDone` has no golden byte vector")),
        "got {violations:?}"
    );
}

#[test]
fn variant_without_dispatch_arm_fails() {
    let ws = real_workspace();
    let doctored = ws.server_rs.replace("Message::ExecuteDone", "Message::Event");
    let violations = lint_dispatch_coverage(&ws.message_rs, &doctored);
    assert!(
        violations.iter().any(|v| v.detail.contains("`ExecuteDone` is not handled")),
        "got {violations:?}"
    );
}

#[test]
fn wildcard_arm_in_dispatch_fails() {
    let ws = real_workspace();
    let mut doctored = ws.server_rs.clone();
    doctored.push_str(
        "\nfn doctored(m: u32) -> u32 {\n    match m {\n        other => other,\n    }\n}\n",
    );
    let violations = lint_dispatch_coverage(&ws.message_rs, &doctored);
    assert!(violations.iter().any(|v| v.detail.contains("wildcard/binding")), "got {violations:?}");
}

#[test]
fn retagged_encoder_fails() {
    let ws = real_workspace();
    // ExecuteDone's tag collides with Event's: duplicate tag plus an
    // encode/decode disagreement.
    let doctored = ws.codec_rs.replace("buf.put_u8(16);", "buf.put_u8(12);");
    let violations = lint_wire_tags(&ws.message_rs, &doctored);
    assert!(
        violations.iter().any(|v| v.detail.contains("duplicate wire tag")),
        "got {violations:?}"
    );
    assert!(violations.iter().any(|v| v.detail.contains("decodes to")), "got {violations:?}");
}

#[test]
fn unsanctioned_force_unlock_fails() {
    let mut ws = real_workspace();
    ws.all_sources.push((
        "crates/apps/src/doctored.rs".to_owned(),
        "fn f(t: &mut LockTable, o: &GlobalObjectId) { t.force_unlock(o); }".to_owned(),
    ));
    let violations = lint_restricted_calls(&ws.all_sources);
    assert!(
        violations.iter().any(|v| v.file.contains("doctored") && v.detail.contains("force_unlock")),
        "got {violations:?}"
    );
}

/// The shard-only core surface is router business: a stray caller in an
/// app crate extracting a component (or draining the route log) would
/// silently desync the router's maps, so the lint must flag it — while
/// the real `shard.rs` and runtime call sites stay sanctioned.
#[test]
fn unsanctioned_shard_api_call_fails() {
    let mut ws = real_workspace();
    ws.all_sources.push((
        "crates/apps/src/doctored.rs".to_owned(),
        "fn f(c: &mut ServerCore<u64>, seed: InstanceId) { let _ = c.extract_component(seed); \
         let _ = c.take_route_events(); }"
            .to_owned(),
    ));
    let violations = lint_restricted_calls(&ws.all_sources);
    for api in ["extract_component", "take_route_events"] {
        assert!(
            violations.iter().any(|v| v.file.contains("doctored") && v.detail.contains(api)),
            "lint missed unsanctioned `{api}` call: {violations:?}"
        );
    }
}

#[test]
fn stripped_crate_header_fails() {
    let ws = real_workspace();
    let doctored: Vec<(String, String)> = ws
        .crate_roots
        .iter()
        .map(|(p, t)| (p.clone(), t.replace("#![forbid(unsafe_code)]", "")))
        .collect();
    let violations = lint_crate_headers(&doctored);
    assert!(
        violations.iter().any(|v| v.detail.contains("forbid(unsafe_code)")),
        "got {violations:?}"
    );
}
