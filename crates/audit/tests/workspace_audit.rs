//! The audit gate, end to end: the real workspace must pass every
//! lint — textual and AST — and doctored copies of it must fail,
//! proving the rules bite on the sources they ship with, not just on
//! toy fixtures. One test per doctored failure class from the AST
//! pass: a fresh unwrap (panic ratchet), a sleep reachable from the
//! poll loop (blocking-call), a two-lock cycle (lock-order), a
//! restricted call, a stripped crate header, and a wildcard dispatch
//! arm — plus the ratchet mechanics around `audit-baseline.toml`.

use std::path::Path;

use cosoft_audit::ast::AstWorkspace;
use cosoft_audit::baseline::{Baseline, BASELINE_PATH};
use cosoft_audit::lints::{lint_fault_injection_gating, lint_golden_coverage, lint_wire_tags};
use cosoft_audit::rules::blocking::lint_blocking;
use cosoft_audit::rules::dispatch::lint_dispatch_coverage;
use cosoft_audit::rules::headers::lint_crate_headers;
use cosoft_audit::rules::lock_order::lint_lock_order;
use cosoft_audit::rules::restricted::lint_restricted_calls;
use cosoft_audit::rules::run_ast_rules;
use cosoft_audit::{run_all_lints, WorkspaceSources};

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn real_workspace() -> WorkspaceSources {
    WorkspaceSources::load(&workspace_root()).expect("workspace readable")
}

fn real_baseline() -> Baseline {
    let text = std::fs::read_to_string(workspace_root().join(BASELINE_PATH))
        .expect("committed baseline readable");
    Baseline::parse(&text).expect("committed baseline parses")
}

fn parse(sources: &[(String, String)]) -> AstWorkspace {
    match AstWorkspace::parse(sources) {
        Ok(ws) => ws,
        Err(errors) => panic!("workspace sources failed to parse: {errors:?}"),
    }
}

/// Applies a textual doctoring to one file of the source list,
/// asserting the needle was actually present.
fn doctor(sources: &mut [(String, String)], path: &str, from: &str, to: &str) {
    let (_, text) =
        sources.iter_mut().find(|(p, _)| p == path).unwrap_or_else(|| panic!("no {path}"));
    assert!(text.contains(from), "doctoring needle `{from}` not found in {path}");
    *text = text.replace(from, to);
}

// ------------------------------------------------------------------
// the real tree passes
// ------------------------------------------------------------------

#[test]
fn real_workspace_is_clean() {
    let ws = real_workspace();
    let ast = parse(&ws.all_sources);
    let mut violations = run_all_lints(&ws);
    violations.extend(run_ast_rules(&ast, &real_baseline()));
    assert!(
        violations.is_empty(),
        "workspace has audit violations:\n{}",
        violations.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}

// ------------------------------------------------------------------
// panic-freedom ratchet
// ------------------------------------------------------------------

/// A fresh unwrap in non-test code of a ratcheted crate pushes the
/// count past the committed baseline and names the site.
#[test]
fn fresh_unwrap_fails_the_ratchet() {
    let ws = real_workspace();
    let mut sources = ws.all_sources.clone();
    sources.push((
        "crates/net/src/doctored.rs".to_owned(),
        "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n".to_owned(),
    ));
    let violations = run_ast_rules(&parse(&sources), &real_baseline());
    assert!(
        violations.iter().any(|v| v.rule == "panic-ratchet"
            && v.detail.contains("cosoft-net")
            && v.detail.contains("doctored.rs:2")),
        "ratchet did not flag the fresh unwrap: {violations:?}"
    );
}

/// A baseline entry above the live count is stale and must be lowered:
/// the ratchet is exact in both directions.
#[test]
fn stale_baseline_entry_is_rejected() {
    let ws = real_workspace();
    let baseline = Baseline::parse(
        "[unannotated-panics]\ncosoft-net = 5\ncosoft-server = 0\ncosoft-wire = 0\n",
    )
    .expect("parses");
    let violations = run_ast_rules(&parse(&ws.all_sources), &baseline);
    assert!(
        violations.iter().any(|v| v.rule == "panic-ratchet" && v.detail.contains("lower")),
        "stale baseline was not rejected: {violations:?}"
    );
}

/// `// audit: infallible` without a reason is itself a violation, and
/// an annotation with no panic site under it is dangling.
#[test]
fn malformed_and_dangling_annotations_are_rejected() {
    let ws = real_workspace();
    let mut sources = ws.all_sources.clone();
    sources.push((
        "crates/net/src/doctored.rs".to_owned(),
        "pub fn f(x: Option<u32>) -> u32 {\n    // audit: infallible\n    x.unwrap()\n}\n\
         pub fn g() -> u32 {\n    // audit: infallible — nothing here can panic\n    7\n}\n"
            .to_owned(),
    ));
    let violations = run_ast_rules(&parse(&sources), &real_baseline());
    assert!(
        violations.iter().any(|v| v.rule == "audit-annotation" && v.detail.contains("reason")),
        "missing-reason annotation was not rejected: {violations:?}"
    );
    assert!(
        violations.iter().any(|v| v.rule == "audit-annotation" && v.detail.contains("no panic")),
        "dangling annotation was not rejected: {violations:?}"
    );
}

/// Unwraps (and annotations) inside `#[cfg(test)]` code are invisible
/// to the ratchet.
#[test]
fn test_code_is_exempt_from_the_ratchet() {
    let ws = real_workspace();
    let mut sources = ws.all_sources.clone();
    sources.push((
        "crates/net/src/doctored.rs".to_owned(),
        "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        // audit: infallible\n        \
         None::<u32>.unwrap();\n    }\n}\n"
            .to_owned(),
    ));
    let violations = run_ast_rules(&parse(&sources), &real_baseline());
    assert!(
        !violations.iter().any(|v| v.file.contains("doctored")),
        "test-only code tripped the ratchet: {violations:?}"
    );
}

// ------------------------------------------------------------------
// blocking-call analysis
// ------------------------------------------------------------------

/// A `thread::sleep` doctored into the poll loop is reachable from
/// `PollThread::run` and rejected.
#[test]
fn sleep_reachable_from_poll_loop_fails() {
    let ws = real_workspace();
    let mut sources = ws.all_sources.clone();
    doctor(
        &mut sources,
        "crates/net/src/poll.rs",
        "let mut park = MIN_PARK;",
        "let mut park = MIN_PARK;\n        std::thread::sleep(std::time::Duration::from_millis(1));",
    );
    let violations = lint_blocking(&parse(&sources));
    assert!(
        violations.iter().any(|v| v.rule == "blocking-call" && v.detail.contains("sleep")),
        "sleep in the poll loop was not flagged: {violations:?}"
    );
}

/// Stripping the sanction annotation from `flush` exposes the lock
/// held across the socket write.
#[test]
fn unannotated_lock_across_write_fails() {
    let ws = real_workspace();
    let mut sources = ws.all_sources.clone();
    doctor(
        &mut sources,
        "crates/net/src/poll.rs",
        "// audit: lock-across-write —",
        "// (annotation stripped) —",
    );
    let violations = lint_blocking(&parse(&sources));
    assert!(
        violations.iter().any(|v| v.rule == "lock-across-write" && v.detail.contains("flush")),
        "lock held across the socket write was not flagged: {violations:?}"
    );
}

// ------------------------------------------------------------------
// lock-order analysis
// ------------------------------------------------------------------

/// Two functions acquiring two mutexes in opposite orders form a cycle
/// in the static acquisition graph.
#[test]
fn two_lock_cycle_fails() {
    let ws = real_workspace();
    let mut sources = ws.all_sources.clone();
    sources.push((
        "crates/net/src/doctored.rs".to_owned(),
        "struct D {\n    a: Mutex<u32>,\n    b: Mutex<u64>,\n}\n\
         impl D {\n\
         \x20   fn one_way(&self) {\n        let g = self.a.lock();\n        let h = self.b.lock();\n    }\n\
         \x20   fn other_way(&self) {\n        let h = self.b.lock();\n        let g = self.a.lock();\n    }\n\
         }\n"
            .to_owned(),
    ));
    let violations = lint_lock_order(&parse(&sources));
    assert!(
        violations.iter().any(|v| v.rule == "lock-order" && v.detail.contains("cycle")),
        "opposite-order acquisitions were not flagged: {violations:?}"
    );
}

// ------------------------------------------------------------------
// restricted calls, headers, dispatch (AST ports)
// ------------------------------------------------------------------

#[test]
fn unsanctioned_force_unlock_fails() {
    let ws = real_workspace();
    let mut sources = ws.all_sources.clone();
    sources.push((
        "crates/apps/src/doctored.rs".to_owned(),
        "fn f(t: &mut LockTable, o: &GlobalObjectId) {\n    t.force_unlock(o);\n}\n".to_owned(),
    ));
    let violations = lint_restricted_calls(&parse(&sources));
    assert!(
        violations.iter().any(|v| v.file.contains("doctored") && v.detail.contains("force_unlock")),
        "got {violations:?}"
    );
}

/// The shard-only core surface is router business: a stray caller in an
/// app crate extracting a component (or draining the route log) would
/// silently desync the router's maps — while the real `shard.rs` and
/// runtime call sites stay sanctioned.
#[test]
fn unsanctioned_shard_api_call_fails() {
    let ws = real_workspace();
    let mut sources = ws.all_sources.clone();
    sources.push((
        "crates/apps/src/doctored.rs".to_owned(),
        "fn f(c: &mut ServerCore<u64>, seed: InstanceId) {\n    let _ = c.extract_component(seed);\n\
         \x20   let _ = c.take_route_events();\n}\n"
            .to_owned(),
    ));
    let violations = lint_restricted_calls(&parse(&sources));
    for api in ["extract_component", "take_route_events"] {
        assert!(
            violations.iter().any(|v| v.file.contains("doctored") && v.detail.contains(api)),
            "lint missed unsanctioned `{api}` call: {violations:?}"
        );
    }
}

/// A restricted call that only appears in a comment or a string literal
/// is no longer a violation — the headline false-positive class of the
/// text-scraping predecessor.
#[test]
fn restricted_call_in_comment_or_string_is_ignored() {
    let ws = real_workspace();
    let mut sources = ws.all_sources.clone();
    sources.push((
        "crates/apps/src/doctored.rs".to_owned(),
        "// Documentation can say t.force_unlock(o) freely.\n\
         fn f() -> &'static str {\n    \"even .force_unlock( in a string is fine\"\n}\n"
            .to_owned(),
    ));
    let violations = lint_restricted_calls(&parse(&sources));
    assert!(
        !violations.iter().any(|v| v.file.contains("doctored")),
        "comment/string mention was flagged: {violations:?}"
    );
}

#[test]
fn stripped_crate_header_fails() {
    let ws = real_workspace();
    let mut sources = ws.all_sources.clone();
    doctor(&mut sources, "crates/net/src/lib.rs", "#![forbid(unsafe_code)]", "");
    let violations = lint_crate_headers(&parse(&sources));
    assert!(
        violations
            .iter()
            .any(|v| v.file == "crates/net/src/lib.rs" && v.detail.contains("forbid(unsafe_code)")),
        "got {violations:?}"
    );
}

#[test]
fn variant_without_dispatch_arm_fails() {
    let ws = real_workspace();
    let mut sources = ws.all_sources.clone();
    doctor(&mut sources, "crates/server/src/server.rs", "Message::ExecuteDone", "Message::Event");
    let violations = lint_dispatch_coverage(&parse(&sources));
    assert!(
        violations.iter().any(|v| v.detail.contains("`ExecuteDone` is not handled")),
        "got {violations:?}"
    );
}

/// A wildcard arm in a match that dispatches on `Message` can silently
/// swallow a kind; a wildcard in a match over any other type is fine.
#[test]
fn wildcard_arm_in_message_dispatch_fails() {
    let ws = real_workspace();
    let mut sources = ws.all_sources.clone();
    let doctored = "\nfn doctored(m: Message) -> u32 {\n    match m {\n        \
                    Message::Ping { .. } => 1,\n        _ => 0,\n    }\n}\n";
    let (_, server) = sources
        .iter_mut()
        .find(|(p, _)| p == "crates/server/src/server.rs")
        .expect("server.rs present");
    server.push_str(doctored);
    let violations = lint_dispatch_coverage(&parse(&sources));
    assert!(
        violations.iter().any(|v| v.detail.contains("wildcard arm `_ =>`")),
        "got {violations:?}"
    );
}

// ------------------------------------------------------------------
// surviving text lints (wire tables are literal data, not syntax)
// ------------------------------------------------------------------

#[test]
fn new_variant_without_support_fails_every_leg() {
    let mut ws = real_workspace();
    let doctored = ws
        .message_rs
        .replace("pub enum Message {", "pub enum Message {\n    /// Doctored.\n    Gadget,");
    ws.message_rs = doctored.clone();
    let mut sources = ws.all_sources.clone();
    doctor(
        &mut sources,
        "crates/wire/src/message.rs",
        "pub enum Message {",
        "pub enum Message {\n    /// Doctored.\n    Gadget,",
    );
    let mut violations = run_all_lints(&ws);
    violations.extend(lint_dispatch_coverage(&parse(&sources)));
    for rule in ["enum-vs-kinds", "wire-tag", "golden-coverage", "dispatch-coverage"] {
        assert!(
            violations.iter().any(|v| v.rule == rule && v.detail.contains("Gadget")),
            "rule {rule} did not flag the doctored variant: {violations:?}"
        );
    }
}

#[test]
fn variant_without_golden_vector_fails() {
    let ws = real_workspace();
    // The golden table aliases `Message` as `M`; dropping the entry's
    // constructor removes the variant's only reference.
    let doctored = ws.golden_rs.replace("M::ExecuteDone", "M::ExecuteEvent");
    let violations = lint_golden_coverage(&ws.message_rs, &doctored);
    assert!(
        violations.iter().any(|v| v.detail.contains("`ExecuteDone` has no golden byte vector")),
        "got {violations:?}"
    );
}

// ------------------------------------------------------------------
// fault-injection feature gating (manifest lint)
// ------------------------------------------------------------------

/// Turning the chaos feature into a default feature of `cosoft-net`
/// would silently ship the injector in release builds.
#[test]
fn default_fault_injection_feature_fails() {
    let ws = real_workspace();
    let mut manifests = ws.manifests.clone();
    doctor(
        &mut manifests,
        "crates/net/Cargo.toml",
        "fault-injection = []",
        "default = [\"fault-injection\"]\nfault-injection = []",
    );
    let violations = lint_fault_injection_gating(&manifests);
    assert!(
        violations
            .iter()
            .any(|v| v.rule == "fault-injection-gating"
                && v.detail.contains("default features reach")),
        "default-feature doctoring was not flagged: {violations:?}"
    );
}

/// A release-facing dependency declaration that force-enables the
/// feature is just as bad as a default feature.
#[test]
fn dependency_forcing_fault_injection_fails() {
    let ws = real_workspace();
    let mut manifests = ws.manifests.clone();
    manifests.push((
        "crates/apps/Cargo.toml.doctored/Cargo.toml".to_owned(),
        "[dependencies]\ncosoft-net = { path = \"../net\", features = [\"fault-injection\"] }\n"
            .to_owned(),
    ));
    let violations = lint_fault_injection_gating(&manifests);
    assert!(
        violations
            .iter()
            .any(|v| v.rule == "fault-injection-gating" && v.detail.contains("unconditionally")),
        "forced dependency feature was not flagged: {violations:?}"
    );
}

/// Deleting the feature declaration must fail too, or the other legs
/// of the lint would pass vacuously forever after a rename.
#[test]
fn removed_fault_injection_declaration_fails() {
    let ws = real_workspace();
    let mut manifests = ws.manifests.clone();
    doctor(&mut manifests, "crates/net/Cargo.toml", "fault-injection = []", "");
    let violations = lint_fault_injection_gating(&manifests);
    assert!(
        violations
            .iter()
            .any(|v| v.rule == "fault-injection-gating" && v.detail.contains("no longer declared")),
        "removed declaration was not flagged: {violations:?}"
    );
}

#[test]
fn retagged_encoder_fails() {
    let ws = real_workspace();
    // ExecuteDone's tag collides with Event's: duplicate tag plus an
    // encode/decode disagreement.
    let doctored = ws.codec_rs.replace("buf.put_u8(16);", "buf.put_u8(12);");
    let violations = lint_wire_tags(&ws.message_rs, &doctored);
    assert!(
        violations.iter().any(|v| v.detail.contains("duplicate wire tag")),
        "got {violations:?}"
    );
    assert!(violations.iter().any(|v| v.detail.contains("decodes to")), "got {violations:?}");
}
