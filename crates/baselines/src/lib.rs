//! `cosoft-baselines` — the comparator architectures of §2.1 (Figures
//! 1–3) and the timestamp-ordering alternative, all runnable against the
//! same scripted workloads as the COSOFT system itself.
//!
//! * [`arch::run_multiplex`] — Figure 1, single-instance / SharedX style;
//! * [`arch::run_ui_replicated`] — Figure 2, Suite/Rendezvous style;
//! * [`arch::run_fully_replicated`] — Figure 3/4, the COSOFT model with
//!   partial coupling (analytic);
//! * [`cosoft_live::run_cosoft_live`] — the same architecture driven
//!   through the real protocol stack for cross-validation;
//! * [`timestamp::run_timestamp`] — GROVE-style optimistic
//!   dependency-detection ordering, the paper's cited alternative to
//!   centralized floor control.
//!
//! The benchmark harness (`cosoft-bench`) uses these runners to
//! regenerate the paper's architecture figures and comparison table.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod arch;
pub mod cosoft_live;
pub mod stats;
pub mod timestamp;
pub mod workload;

pub use arch::{run_fully_replicated, run_multiplex, run_ui_replicated, ArchConfig};
pub use cosoft_live::run_cosoft_live;
pub use stats::{ActionKind, ActionSample, RunStats};
pub use timestamp::{run_timestamp, TimestampStats};
pub use workload::{editing_workload, mixed_workload, sketch_workload, WorkAction, Workload};
