//! Measurement records shared by all architecture runners.

/// Classification of one workload action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActionKind {
    /// A pure user-interface action (typing, selecting) with no
    /// application-semantic cost.
    Ui,
    /// An action invoking application functionality with a configurable
    /// service time (e.g. evaluating a query, recomputing a view).
    Semantic,
}

/// One completed action with its virtual-time latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActionSample {
    /// Issuing user (0-based).
    pub user: usize,
    /// Action classification.
    pub kind: ActionKind,
    /// Virtual time the user issued the action (µs).
    pub issued_us: u64,
    /// Virtual time the action's effect reached the issuing user (µs).
    pub completed_us: u64,
}

impl ActionSample {
    /// The action's end-to-end latency in microseconds.
    pub fn latency_us(&self) -> u64 {
        self.completed_us.saturating_sub(self.issued_us)
    }
}

/// Result of running one workload on one architecture.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Per-action samples.
    pub samples: Vec<ActionSample>,
    /// Total protocol bytes put on the (simulated) wire.
    pub bytes_sent: u64,
    /// Total protocol messages sent.
    pub messages_sent: u64,
    /// Virtual time at which the run went quiescent (µs).
    pub makespan_us: u64,
}

impl RunStats {
    /// Latencies of the samples matching `kind` (or all), sorted.
    pub fn latencies_us(&self, kind: Option<ActionKind>) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .samples
            .iter()
            .filter(|s| kind.map(|k| s.kind == k).unwrap_or(true))
            .map(ActionSample::latency_us)
            .collect();
        v.sort_unstable();
        v
    }

    /// Mean latency in microseconds over the matching samples (0 if none).
    pub fn mean_latency_us(&self, kind: Option<ActionKind>) -> f64 {
        let v = self.latencies_us(kind);
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<u64>() as f64 / v.len() as f64
        }
    }

    /// The `p`-quantile latency (p in `[0, 1]`) over matching samples.
    pub fn percentile_latency_us(&self, kind: Option<ActionKind>, p: f64) -> u64 {
        let v = self.latencies_us(kind);
        if v.is_empty() {
            return 0;
        }
        let idx = ((v.len() as f64 - 1.0) * p.clamp(0.0, 1.0)).round() as usize;
        v[idx]
    }

    /// Bytes on the wire per sampled action (0 if no samples).
    pub fn bytes_per_action(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.bytes_sent as f64 / self.samples.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(kind: ActionKind, lat: u64) -> ActionSample {
        ActionSample { user: 0, kind, issued_us: 100, completed_us: 100 + lat }
    }

    #[test]
    fn latency_and_percentiles() {
        let stats = RunStats {
            samples: (1..=100).map(|i| sample(ActionKind::Ui, i * 10)).collect(),
            bytes_sent: 5_000,
            messages_sent: 100,
            makespan_us: 1_000,
        };
        assert_eq!(stats.latencies_us(None).len(), 100);
        assert!((stats.mean_latency_us(None) - 505.0).abs() < 1e-9);
        assert_eq!(stats.percentile_latency_us(None, 0.0), 10);
        assert_eq!(stats.percentile_latency_us(None, 1.0), 1000);
        assert_eq!(stats.percentile_latency_us(None, 0.5), 510);
        assert!((stats.bytes_per_action() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn kind_filter() {
        let stats = RunStats {
            samples: vec![sample(ActionKind::Ui, 10), sample(ActionKind::Semantic, 1000)],
            ..Default::default()
        };
        assert_eq!(stats.latencies_us(Some(ActionKind::Ui)), vec![10]);
        assert_eq!(stats.latencies_us(Some(ActionKind::Semantic)), vec![1000]);
        assert_eq!(stats.mean_latency_us(None), 505.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let stats = RunStats::default();
        assert_eq!(stats.mean_latency_us(None), 0.0);
        assert_eq!(stats.percentile_latency_us(None, 0.9), 0);
        assert_eq!(stats.bytes_per_action(), 0.0);
    }
}
