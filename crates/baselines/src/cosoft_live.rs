//! The fully replicated architecture driven through the *real* COSOFT
//! protocol: actual [`cosoft_core::Session`]s, the real server core, the
//! real wire codec — on the virtual-time network.
//!
//! This runner cross-validates the analytic model in [`crate::arch`]: it
//! measures protocol-true latencies and byte counts. Actions are injected
//! at their scripted issue times and each is settled before the next
//! (closed-per-action measurement; deliberate floor-control contention is
//! exercised separately by the lock benchmarks).

use cosoft_core::harness::SimHarness;
use cosoft_core::session::Session;
use cosoft_net::sim::NodeId;
use cosoft_uikit::{spec, Toolkit};
use cosoft_wire::UserId;

use crate::stats::{ActionSample, RunStats};
use crate::workload::{paths, Workload};

/// The per-user instance spec: the shared `work` form plus a private
/// environment.
const INSTANCE_SPEC: &str = r#"form work {
  textfield field text=""
  button compute title="Compute"
  panel private {
    textfield field text=""
    button compute title="Compute"
  }
}"#;

fn rewrite_path(p: &cosoft_wire::ObjectPath) -> cosoft_wire::ObjectPath {
    // Workload paths use `work.*` for shared and `private.*` for private
    // objects; the instance hosts the private ones under `work.private.*`.
    match p.segments().first().map(String::as_str) {
        Some("private") => {
            let rel = p
                .strip_prefix(&cosoft_wire::ObjectPath::parse("private").expect("static"))
                .expect("prefix checked");
            cosoft_wire::ObjectPath::parse("work.private").expect("static").join(&rel)
        }
        _ => p.clone(),
    }
}

/// Runs the workload over live sessions. Returns protocol-true stats.
///
/// # Panics
///
/// Panics on protocol failures (this is a measurement harness; failures
/// indicate bugs, not conditions to recover from).
pub fn run_cosoft_live(workload: &Workload, seed: u64, one_way_latency_us: u64) -> RunStats {
    let mut h = SimHarness::with_latency(seed, one_way_latency_us);
    let nodes: Vec<NodeId> = (0..workload.users)
        .map(|u| {
            h.add_session(Session::new(
                Toolkit::from_tree(spec::build_tree(INSTANCE_SPEC).expect("static spec")),
                UserId(u as u64 + 1),
                &format!("ws{u}"),
                "workload",
            ))
        })
        .collect();
    h.settle();

    // Couple the shared field and compute button across all users
    // (a chain; the closure connects everyone).
    for w in nodes.windows(2) {
        for p in [paths::field(), paths::compute()] {
            let dst = h.session(w[1]).gid(&p).expect("registered");
            h.session_mut(w[0]).couple(&p, dst).expect("registered");
        }
        h.settle();
    }
    h.net.reset_stats();

    let mut stats = RunStats::default();
    for action in &workload.actions {
        h.net.advance_to(action.issue_us);
        let issued = h.net.now_us();
        let node = nodes[action.user];
        let event = action.event.retarget(rewrite_path(&action.event.path));
        h.session_mut(node).user_event(event).expect("workload event is valid");
        h.settle();
        stats.samples.push(ActionSample {
            user: action.user,
            kind: action.kind,
            issued_us: issued,
            completed_us: h.net.now_us(),
        });
    }
    stats.bytes_sent = h.net.stats().bytes_sent;
    stats.messages_sent = h.net.stats().messages_sent;
    stats.makespan_us = h.net.now_us();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ActionKind;
    use crate::workload::mixed_workload;

    #[test]
    fn live_run_produces_protocol_traffic_for_shared_actions_only() {
        let all_private = mixed_workload(3, 3, 5, 10_000, 0.2, 0.0);
        let stats = run_cosoft_live(&all_private, 1, 2_000);
        assert_eq!(stats.samples.len(), 15);
        assert_eq!(stats.messages_sent, 0, "private actions stay local");
        assert!(
            stats.latencies_us(None).iter().all(|&l| l == 0),
            "local = instant in virtual time"
        );

        let all_shared = mixed_workload(3, 3, 5, 10_000, 0.2, 1.0);
        let stats = run_cosoft_live(&all_shared, 1, 2_000);
        assert!(stats.messages_sent > 0);
        // Shared actions pay at least the grant round trip (2 hops).
        assert!(
            stats.latencies_us(None).iter().all(|&l| l >= 4_000),
            "{:?}",
            stats.latencies_us(None)
        );
    }

    #[test]
    fn live_latency_scales_with_network_latency() {
        let w = mixed_workload(5, 4, 5, 50_000, 0.0, 1.0);
        let fast = run_cosoft_live(&w, 2, 500);
        let slow = run_cosoft_live(&w, 2, 10_000);
        assert!(
            slow.mean_latency_us(Some(ActionKind::Ui)) > fast.mean_latency_us(Some(ActionKind::Ui))
        );
    }

    #[test]
    fn live_runs_are_deterministic() {
        let w = mixed_workload(8, 4, 10, 20_000, 0.1, 0.5);
        let a = run_cosoft_live(&w, 9, 2_000);
        let b = run_cosoft_live(&w, 9, 2_000);
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.bytes_sent, b.bytes_sent);
    }
}
