//! Seeded workload generation shared by all architecture runners.

use cosoft_wire::{EventKind, ObjectPath, UiEvent, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::stats::ActionKind;

/// One scripted user action.
#[derive(Debug, Clone)]
pub struct WorkAction {
    /// Issuing user (0-based).
    pub user: usize,
    /// Absolute virtual issue time (µs).
    pub issue_us: u64,
    /// Action classification.
    pub kind: ActionKind,
    /// The UI event the action produces, addressed within the user's own
    /// instance (`form.field` / `form.compute`).
    pub event: UiEvent,
}

/// A scripted multi-user editing session.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Number of participating users.
    pub users: usize,
    /// Actions sorted by issue time.
    pub actions: Vec<WorkAction>,
}

/// Paths used by the canonical workload form.
pub mod paths {
    use cosoft_wire::ObjectPath;

    /// The shared text field every user edits.
    pub fn field() -> ObjectPath {
        ObjectPath::parse("work.field").expect("static path")
    }

    /// The button invoking the semantic action.
    pub fn compute() -> ObjectPath {
        ObjectPath::parse("work.compute").expect("static path")
    }

    /// The UI-spec of the workload form.
    pub const SPEC: &str = r#"form work {
  textfield field text=""
  button compute title="Compute"
}"#;
}

/// Generates the canonical mixed editing workload: each user issues
/// `actions_per_user` actions with exponential-ish think times around
/// `mean_think_us`; a `semantic_fraction` of actions invoke the semantic
/// "compute" button instead of editing the text field.
pub fn editing_workload(
    seed: u64,
    users: usize,
    actions_per_user: usize,
    mean_think_us: u64,
    semantic_fraction: f64,
) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut actions = Vec::with_capacity(users * actions_per_user);
    for user in 0..users {
        let mut t = rng.gen_range(0..mean_think_us.max(1));
        for k in 0..actions_per_user {
            let semantic = rng.gen_bool(semantic_fraction.clamp(0.0, 1.0));
            let event = if semantic {
                UiEvent::simple(paths::compute(), EventKind::Activate)
            } else {
                UiEvent::new(
                    paths::field(),
                    EventKind::TextCommitted,
                    vec![Value::Text(format!("u{user}-v{k}"))],
                )
            };
            actions.push(WorkAction {
                user,
                issue_us: t,
                kind: if semantic { ActionKind::Semantic } else { ActionKind::Ui },
                event,
            });
            // Geometric think time approximating an exponential.
            let jitter = rng.gen_range(1..=2 * mean_think_us.max(1));
            t += jitter;
        }
    }
    actions.sort_by_key(|a| a.issue_us);
    Workload { users, actions }
}

/// Generates the mixed private/shared workload used by the Table-1
/// comparison: like [`editing_workload`], but only a `shared_fraction` of
/// actions target the shared (`work.*`) objects; the rest act on the
/// user's private environment (`private.*` paths), which only the fully
/// replicated architecture can keep off the wire (partial coupling).
pub fn mixed_workload(
    seed: u64,
    users: usize,
    actions_per_user: usize,
    mean_think_us: u64,
    semantic_fraction: f64,
    shared_fraction: f64,
) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let private_field = ObjectPath::parse("private.field").expect("static path");
    let private_compute = ObjectPath::parse("private.compute").expect("static path");
    let mut actions = Vec::with_capacity(users * actions_per_user);
    for user in 0..users {
        let mut t = rng.gen_range(0..mean_think_us.max(1));
        for k in 0..actions_per_user {
            let semantic = rng.gen_bool(semantic_fraction.clamp(0.0, 1.0));
            let shared = rng.gen_bool(shared_fraction.clamp(0.0, 1.0));
            let event = match (semantic, shared) {
                (true, true) => UiEvent::simple(paths::compute(), EventKind::Activate),
                (true, false) => UiEvent::simple(private_compute.clone(), EventKind::Activate),
                (false, true) => UiEvent::new(
                    paths::field(),
                    EventKind::TextCommitted,
                    vec![Value::Text(format!("u{user}-v{k}"))],
                ),
                (false, false) => UiEvent::new(
                    private_field.clone(),
                    EventKind::TextCommitted,
                    vec![Value::Text(format!("u{user}-v{k}"))],
                ),
            };
            actions.push(WorkAction {
                user,
                issue_us: t,
                kind: if semantic { ActionKind::Semantic } else { ActionKind::Ui },
                event,
            });
            let jitter = rng.gen_range(1..=2 * mean_think_us.max(1));
            t += jitter;
        }
    }
    actions.sort_by_key(|a| a.issue_us);
    Workload { users, actions }
}

/// A strokes workload for canvas-style sketching (used by the group
/// sketch example and throughput benches): every action adds a short
/// stroke to `canvas.board`.
pub fn sketch_workload(seed: u64, users: usize, strokes_per_user: usize) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let path = ObjectPath::parse("canvas.board").expect("static path");
    let mut actions = Vec::new();
    for user in 0..users {
        let mut t = rng.gen_range(0..1_000u64);
        for _ in 0..strokes_per_user {
            let pts: Vec<(i32, i32)> = (0..rng.gen_range(2..6))
                .map(|_| (rng.gen_range(0..640), rng.gen_range(0..480)))
                .collect();
            actions.push(WorkAction {
                user,
                issue_us: t,
                kind: ActionKind::Ui,
                event: UiEvent::new(path.clone(), EventKind::StrokeAdded, vec![Value::Stroke(pts)]),
            });
            t += rng.gen_range(5_000..50_000);
        }
    }
    actions.sort_by_key(|a| a.issue_us);
    Workload { users, actions }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_sorted() {
        let a = editing_workload(1, 4, 10, 30_000, 0.2);
        let b = editing_workload(1, 4, 10, 30_000, 0.2);
        assert_eq!(a.actions.len(), 40);
        assert_eq!(a.actions.len(), b.actions.len());
        for (x, y) in a.actions.iter().zip(&b.actions) {
            assert_eq!(x.issue_us, y.issue_us);
            assert_eq!(x.user, y.user);
        }
        for w in a.actions.windows(2) {
            assert!(w[0].issue_us <= w[1].issue_us);
        }
    }

    #[test]
    fn semantic_fraction_bounds() {
        let none = editing_workload(2, 2, 50, 10_000, 0.0);
        assert!(none.actions.iter().all(|a| a.kind == ActionKind::Ui));
        let all = editing_workload(2, 2, 50, 10_000, 1.0);
        assert!(all.actions.iter().all(|a| a.kind == ActionKind::Semantic));
    }

    #[test]
    fn sketch_workload_produces_strokes() {
        let w = sketch_workload(3, 3, 5);
        assert_eq!(w.actions.len(), 15);
        assert!(w.actions.iter().all(|a| a.kind == ActionKind::Ui));
        assert!(w
            .actions
            .iter()
            .all(|a| matches!(a.event.kind, cosoft_wire::EventKind::StrokeAdded)));
    }
}
