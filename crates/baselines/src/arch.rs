//! Virtual-time models of the three architectures of §2.1 (Figures 1–3),
//! run against the same scripted workloads.
//!
//! Each runner is a small deterministic discrete-event model over the
//! shared [`Workload`] scripts; protocol traffic is accounted by encoding
//! the representative wire messages each architecture would send, so
//! byte-per-action comparisons are apples-to-apples. The fully replicated
//! model is cross-validated against the real protocol by the
//! `cosoft_live` runner (which drives actual [`cosoft_core::Session`]s)
//! and the core integration tests.

use cosoft_wire::{codec, GlobalObjectId, InstanceId, Message, ObjectPath, StateNode, WidgetKind};

use crate::stats::{ActionKind, ActionSample, RunStats};
use crate::workload::Workload;

/// Timing parameters shared by the architecture models.
#[derive(Debug, Clone, Copy)]
pub struct ArchConfig {
    /// One-way network latency in microseconds.
    pub one_way_latency_us: u64,
    /// Service time of a pure UI action (event dispatch + redraw).
    pub ui_service_us: u64,
    /// Service time of a semantic action (application functionality).
    pub semantic_service_us: u64,
}

impl Default for ArchConfig {
    fn default() -> Self {
        // 2 ms LAN hop, 200 µs UI dispatch, 5 ms semantic action.
        ArchConfig { one_way_latency_us: 2_000, ui_service_us: 200, semantic_service_us: 5_000 }
    }
}

fn service(cfg: &ArchConfig, kind: ActionKind) -> u64 {
    match kind {
        ActionKind::Ui => cfg.ui_service_us,
        ActionKind::Semantic => cfg.semantic_service_us,
    }
}

/// Representative wire sizes (bytes) for the protocol messages each
/// architecture exchanges, derived from the real codec.
#[derive(Debug, Clone, Copy)]
struct MsgSizes {
    event: u64,
    display_update: u64,
}

fn msg_sizes() -> MsgSizes {
    let gid = GlobalObjectId::new(InstanceId(1), ObjectPath::parse("work.field").expect("static"));
    let event = Message::Event {
        origin: gid,
        event: cosoft_wire::UiEvent::new(
            ObjectPath::parse("work.field").expect("static"),
            cosoft_wire::EventKind::TextCommitted,
            vec![cosoft_wire::Value::Text("u0-v00".into())],
        ),
        seq: 1,
    };
    let update = Message::ApplyState {
        req_id: 1,
        path: ObjectPath::parse("work.field").expect("static"),
        snapshot: StateNode::new(WidgetKind::TextField, "field")
            .with_attr(cosoft_wire::AttrName::Text, cosoft_wire::Value::Text("u0-v00".into())),
        mode: cosoft_wire::CopyMode::Strict,
    };
    MsgSizes {
        event: codec::encode_message(&event).len() as u64,
        display_update: codec::encode_message(&update).len() as u64,
    }
}

/// Figure 1 — the multiplex (single-instance, SharedX-style) architecture.
///
/// Every action, UI or semantic, private or shared, is an input event sent
/// to the single application instance, processed sequentially there, and
/// answered by display updates multiplexed to *all* participants. "This
/// architecture does not fit in with the requirements of highly parallel
/// processing and real-time response."
pub fn run_multiplex(workload: &Workload, cfg: &ArchConfig) -> RunStats {
    let sizes = msg_sizes();
    let l = cfg.one_way_latency_us;
    let mut center_busy = 0u64;
    let mut stats = RunStats::default();
    for action in &workload.actions {
        let arrival = action.issue_us + l;
        let start = arrival.max(center_busy);
        let done = start + service(cfg, action.kind);
        center_busy = done;
        // Input event + one display update per participant.
        stats.messages_sent += 1 + workload.users as u64;
        stats.bytes_sent += sizes.event + workload.users as u64 * sizes.display_update;
        let completed = done + l;
        stats.samples.push(ActionSample {
            user: action.user,
            kind: action.kind,
            issued_us: action.issue_us,
            completed_us: completed,
        });
        stats.makespan_us = stats.makespan_us.max(completed);
    }
    stats
}

/// Figure 2 — the UI-replicated (Suite/Rendezvous-style) architecture.
///
/// The user interface is replicated per user, so pure UI actions are
/// local; but there is exactly one semantic component, and *all* semantic
/// actions — even logically private ones — are buffered and executed
/// sequentially there ("if such a semantic action is time-consuming, it
/// may block the execution of other user's actions").
pub fn run_ui_replicated(workload: &Workload, cfg: &ArchConfig) -> RunStats {
    let sizes = msg_sizes();
    let l = cfg.one_way_latency_us;
    let mut center_busy = 0u64;
    let mut user_blocked = vec![0u64; workload.users];
    let mut stats = RunStats::default();
    for action in &workload.actions {
        let eff_issue = action.issue_us.max(user_blocked[action.user]);
        let completed = match action.kind {
            ActionKind::Ui => {
                // Local echo in the user's own UI replica; committed shared
                // values are redistributed through the centre (traffic
                // only, the issuer does not wait).
                stats.messages_sent += workload.users as u64;
                stats.bytes_sent +=
                    sizes.event + (workload.users as u64 - 1) * sizes.display_update;
                eff_issue + cfg.ui_service_us
            }
            ActionKind::Semantic => {
                let arrival = eff_issue + l;
                let start = arrival.max(center_busy);
                let done = start + cfg.semantic_service_us;
                center_busy = done;
                stats.messages_sent += 1 + workload.users as u64;
                stats.bytes_sent += sizes.event + workload.users as u64 * sizes.display_update;
                let completed = done + l;
                // The replica buffers further actions until the semantic
                // result returns.
                user_blocked[action.user] = completed;
                completed
            }
        };
        stats.samples.push(ActionSample {
            user: action.user,
            kind: action.kind,
            issued_us: action.issue_us,
            completed_us: completed,
        });
        stats.makespan_us = stats.makespan_us.max(completed);
    }
    stats
}

/// Whether a workload action targets the shared (coupled) objects or the
/// user's private environment. The canonical editing workload uses the
/// `work.*` paths for shared objects; runners treat anything else as
/// private.
fn is_shared(action: &crate::workload::WorkAction) -> bool {
    action.event.path.segments().first().map(String::as_str) == Some("work")
}

/// Figure 3 / Figure 4 — the fully replicated (COSOFT) architecture with
/// partial coupling.
///
/// Private actions (UI *and* semantic) never leave the user's instance.
/// Shared actions pass floor control (one round trip to the server) and
/// are then re-executed by every group member in parallel — multiple
/// evaluation trades duplicated work for independence from any central
/// executor.
pub fn run_fully_replicated(workload: &Workload, cfg: &ArchConfig) -> RunStats {
    let sizes = msg_sizes();
    let l = cfg.one_way_latency_us;
    let n = workload.users as u64;
    let mut replica_busy = vec![0u64; workload.users];
    // The coupled group serializes shared actions (the lock table).
    let mut lock_free_at = 0u64;
    let mut stats = RunStats::default();
    for action in &workload.actions {
        let svc = service(cfg, action.kind);
        let completed = if is_shared(action) {
            // Floor control: Event → server → grant (2 × one-way), then
            // local execution; other replicas execute after the
            // ExecuteEvent hop; the lock is held until the slowest done.
            let grant = (action.issue_us + 2 * l).max(lock_free_at);
            let local_start = grant.max(replica_busy[action.user]);
            let local_done = local_start + svc;
            replica_busy[action.user] = local_done;
            let mut slowest = local_done;
            for (u, busy) in replica_busy.iter_mut().enumerate() {
                if u != action.user {
                    let remote_start = (grant + l).max(*busy);
                    let remote_done = remote_start + svc;
                    *busy = remote_done;
                    slowest = slowest.max(remote_done);
                }
            }
            // Unlock after every ExecuteDone arrives back at the server.
            lock_free_at = slowest + l;
            // Event + grant + (N-1) execute + N done + N unlocked.
            stats.messages_sent += 1 + 1 + (n - 1) + n + n;
            stats.bytes_sent += sizes.event * (1 + (n - 1)) + 40 * (1 + 2 * n);
            local_done
        } else {
            // Entirely local.
            let start = action.issue_us.max(replica_busy[action.user]);
            let done = start + svc;
            replica_busy[action.user] = done;
            done
        };
        stats.samples.push(ActionSample {
            user: action.user,
            kind: action.kind,
            issued_us: action.issue_us,
            completed_us: completed,
        });
        stats.makespan_us = stats.makespan_us.max(completed);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{editing_workload, paths, WorkAction, Workload};
    use cosoft_wire::{EventKind, UiEvent, Value};

    fn cfg() -> ArchConfig {
        ArchConfig::default()
    }

    /// A workload where user 0 fires a slow semantic action and user 1
    /// issues private UI actions immediately after.
    fn blocking_probe() -> Workload {
        let private = ObjectPath::parse("private.field").unwrap();
        let mut actions = vec![WorkAction {
            user: 0,
            issue_us: 0,
            kind: ActionKind::Semantic,
            event: UiEvent::simple(paths::compute(), EventKind::Activate),
        }];
        for k in 0..5 {
            actions.push(WorkAction {
                user: 1,
                issue_us: 1_000 + k * 500,
                kind: ActionKind::Ui,
                event: UiEvent::new(
                    private.clone(),
                    EventKind::TextCommitted,
                    vec![Value::Text(format!("v{k}"))],
                ),
            });
        }
        Workload { users: 2, actions }
    }

    #[test]
    fn multiplex_serializes_everything() {
        let mut cfg = cfg();
        cfg.semantic_service_us = 100_000; // 100 ms monster action
        let stats = run_multiplex(&blocking_probe(), &cfg);
        // User 1's UI actions are stuck behind the semantic action.
        let ui = stats.latencies_us(Some(ActionKind::Ui));
        assert!(ui[0] > 90_000, "multiplex blocks UI actions: {ui:?}");
    }

    #[test]
    fn ui_replicated_keeps_ui_local_but_serializes_semantics() {
        let mut cfg = cfg();
        cfg.semantic_service_us = 100_000;
        let probe = blocking_probe();
        let stats = run_ui_replicated(&probe, &cfg);
        let ui = stats.latencies_us(Some(ActionKind::Ui));
        assert!(ui.iter().all(|&l| l < 1_000), "UI actions stay local: {ui:?}");

        // But a second user's *semantic* action queues behind the first.
        let mut w = blocking_probe();
        w.actions.push(WorkAction {
            user: 1,
            issue_us: 1_000,
            kind: ActionKind::Semantic,
            event: UiEvent::simple(
                ObjectPath::parse("private.compute").unwrap(),
                EventKind::Activate,
            ),
        });
        let stats = run_ui_replicated(&w, &cfg);
        let sem = stats.latencies_us(Some(ActionKind::Semantic));
        assert!(sem[1] > 150_000, "second semantic action queued: {sem:?}");
    }

    #[test]
    fn fully_replicated_private_semantics_do_not_queue() {
        let mut cfg = cfg();
        cfg.semantic_service_us = 100_000;
        let mut w = blocking_probe();
        // User 0's semantic action is *private* here.
        w.actions[0].event =
            UiEvent::simple(ObjectPath::parse("private.compute").unwrap(), EventKind::Activate);
        w.actions.push(WorkAction {
            user: 1,
            issue_us: 1_000,
            kind: ActionKind::Semantic,
            event: UiEvent::simple(
                ObjectPath::parse("private.compute").unwrap(),
                EventKind::Activate,
            ),
        });
        let stats = run_fully_replicated(&w, &cfg);
        let sem = stats.latencies_us(Some(ActionKind::Semantic));
        // Both users pay only their own replica's work (service time plus
        // their own queued UI actions) — no *cross-user* queueing, unlike
        // the UI-replicated centre where the second action waits ~200 ms.
        assert!(sem.iter().all(|&l| l <= 105_000), "{sem:?}");
        // And private actions produce zero traffic.
        assert_eq!(stats.messages_sent, 0, "private work is invisible to the network in COSOFT");
    }

    #[test]
    fn fully_replicated_shared_actions_pay_floor_control() {
        let cfg = cfg();
        let w = Workload {
            users: 4,
            actions: vec![WorkAction {
                user: 0,
                issue_us: 0,
                kind: ActionKind::Ui,
                event: UiEvent::new(
                    paths::field(),
                    EventKind::TextCommitted,
                    vec![Value::Text("x".into())],
                ),
            }],
        };
        let stats = run_fully_replicated(&w, &cfg);
        // 2 one-way hops (event + grant) + service.
        assert_eq!(stats.samples[0].latency_us(), 2 * cfg.one_way_latency_us + cfg.ui_service_us);
        assert!(stats.messages_sent > 0);
    }

    #[test]
    fn table1_ordering_holds_on_mixed_workload() {
        // The canonical comparison: mostly private work with some shared
        // editing and semantic actions, 8 users.
        let w = crate::workload::mixed_workload(7, 8, 40, 20_000, 0.15, 0.3);
        let cfg = cfg();
        let m = run_multiplex(&w, &cfg);
        let u = run_ui_replicated(&w, &cfg);
        let f = run_fully_replicated(&w, &cfg);
        // UI latency: multiplex worst (round trip + queue), UI-replicated
        // and fully replicated local-ish.
        assert!(m.mean_latency_us(Some(ActionKind::Ui)) > u.mean_latency_us(Some(ActionKind::Ui)));
        // Semantic latency: UI-replicated queues centrally; fully
        // replicated executes locally after floor control.
        assert!(
            u.mean_latency_us(Some(ActionKind::Semantic))
                >= f.mean_latency_us(Some(ActionKind::Semantic))
        );
        // All three produce traffic for this shared workload.
        assert!(m.bytes_sent > 0 && u.bytes_sent > 0 && f.bytes_sent > 0);
    }

    #[test]
    fn deterministic_runs() {
        let w = editing_workload(9, 4, 20, 15_000, 0.2);
        let cfg = cfg();
        let a = run_fully_replicated(&w, &cfg);
        let b = run_fully_replicated(&w, &cfg);
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.bytes_sent, b.bytes_sent);
    }
}
