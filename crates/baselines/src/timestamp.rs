//! Timestamp / dependency-detection ordering (GROVE-style, §2.1): the
//! alternative to COSOFT's centralized floor control for fully replicated
//! systems.
//!
//! "In timestamp (or dependency-detection) approach, each user action is
//! timestamped in order to detect conflicting actions."
//!
//! The model: every replica applies its own action optimistically at issue
//! time (zero local latency) and broadcasts it with a `(lamport, replica)`
//! timestamp. Two actions on the same object are *concurrent* — and
//! therefore conflicting — when neither replica had seen the other's
//! action at issue time (their issue times are within one one-way
//! propagation delay). The lower timestamp wins; the loser's optimistic
//! application is rolled back and replaced. The interesting comparison
//! with floor control: zero grant latency versus rollbacks under
//! contention.

use std::collections::HashMap;

use cosoft_wire::ObjectPath;

use crate::stats::{ActionSample, RunStats};
use crate::workload::Workload;

/// Outcome of running a workload under timestamp ordering.
#[derive(Debug, Clone, Default)]
pub struct TimestampStats {
    /// Per-action samples (latency = local application, i.e. 0, plus the
    /// rollback penalty for losers).
    pub run: RunStats,
    /// Actions that conflicted with a concurrent action on the same
    /// object.
    pub conflicts: u64,
    /// Conflict losers whose optimistic application was rolled back.
    pub rollbacks: u64,
    /// Time by which every replica converged (µs).
    pub convergence_us: u64,
}

/// Runs `workload` under optimistic timestamp ordering with the given
/// one-way propagation delay.
pub fn run_timestamp(workload: &Workload, one_way_latency_us: u64) -> TimestampStats {
    let mut stats = TimestampStats::default();
    // Actions per object, in issue order (the workload is sorted).
    let mut per_object: HashMap<&ObjectPath, Vec<usize>> = HashMap::new();
    for (i, a) in workload.actions.iter().enumerate() {
        per_object.entry(&a.event.path).or_default().push(i);
    }
    let mut lost = vec![false; workload.actions.len()];
    for indices in per_object.values() {
        for w in indices.windows(2) {
            let (i, j) = (w[0], w[1]);
            let (a, b) = (&workload.actions[i], &workload.actions[j]);
            if a.user != b.user && b.issue_us.saturating_sub(a.issue_us) < one_way_latency_us {
                // Neither saw the other: conflict. Deterministic winner:
                // lower (issue, user) — here a, being earlier in sorted
                // order.
                stats.conflicts += 2;
                stats.rollbacks += 1;
                lost[j] = true;
            }
        }
    }
    for (i, a) in workload.actions.iter().enumerate() {
        // Optimistic local application is instantaneous; a loser pays the
        // detection delay (the winner's broadcast must arrive) before its
        // state is corrected.
        let completed = if lost[i] { a.issue_us + one_way_latency_us } else { a.issue_us };
        stats.run.samples.push(ActionSample {
            user: a.user,
            kind: a.kind,
            issued_us: a.issue_us,
            completed_us: completed,
        });
        // One broadcast to every other replica.
        stats.run.messages_sent += (workload.users as u64).saturating_sub(1);
        stats.run.bytes_sent += 64 * (workload.users as u64).saturating_sub(1);
        let converged = a.issue_us + one_way_latency_us;
        stats.convergence_us = stats.convergence_us.max(converged);
        stats.run.makespan_us = stats.run.makespan_us.max(completed);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{editing_workload, paths, WorkAction};
    use cosoft_wire::{EventKind, UiEvent, Value};

    #[test]
    fn no_conflicts_when_actions_are_spaced() {
        let mut w = editing_workload(1, 4, 10, 1_000_000, 0.0);
        w.actions.sort_by_key(|a| a.issue_us);
        let stats = run_timestamp(&w, 2_000);
        assert_eq!(stats.conflicts, 0);
        assert_eq!(stats.rollbacks, 0);
        // All actions apply locally with zero latency.
        assert!(stats.run.latencies_us(None).iter().all(|&l| l == 0));
    }

    #[test]
    fn concurrent_same_object_actions_conflict() {
        let ev = |user, t| WorkAction {
            user,
            issue_us: t,
            kind: crate::stats::ActionKind::Ui,
            event: UiEvent::new(
                paths::field(),
                EventKind::TextCommitted,
                vec![Value::Text("x".into())],
            ),
        };
        let w = crate::workload::Workload { users: 2, actions: vec![ev(0, 1_000), ev(1, 1_500)] };
        let stats = run_timestamp(&w, 2_000);
        assert_eq!(stats.rollbacks, 1);
        assert_eq!(stats.conflicts, 2);
        // The loser converges after the winner's broadcast arrives.
        assert_eq!(stats.run.samples[1].latency_us(), 2_000);
    }

    #[test]
    fn same_user_actions_never_conflict() {
        let ev = |t| WorkAction {
            user: 0,
            issue_us: t,
            kind: crate::stats::ActionKind::Ui,
            event: UiEvent::new(
                paths::field(),
                EventKind::TextCommitted,
                vec![Value::Text("x".into())],
            ),
        };
        let w = crate::workload::Workload { users: 1, actions: vec![ev(0), ev(10)] };
        let stats = run_timestamp(&w, 5_000);
        assert_eq!(stats.conflicts, 0);
    }

    #[test]
    fn conflict_rate_grows_with_latency() {
        let w = editing_workload(5, 8, 50, 10_000, 0.0);
        let slow = run_timestamp(&w, 50_000);
        let fast = run_timestamp(&w, 500);
        assert!(slow.rollbacks > fast.rollbacks);
    }
}
