//! Transport chaos tests: every scripted fault — torn frames, garbage
//! bytes, oversized headers, stalled peers, partial writes, `WouldBlock`
//! storms, short reads, injected socket errors — must end in a clean
//! state: exactly one `Disconnected` per torn connection, no poll-thread
//! death, no permanently blocked sender, and healthy peers unaffected.
//!
//! Peer-originated faults (evil bytes written by a raw socket) need no
//! instrumentation and always run. Kernel-boundary faults (cut writes,
//! shortened reads, synthesized errors) use the deterministic
//! `FaultInjector` behind the non-default `fault-injection` feature:
//!
//! ```text
//! cargo test --features fault-injection --test tcp_chaos
//! ```
//!
//! The seeded random soak scales with `COSOFT_CHAOS_STEPS` (messages per
//! client; default keeps the gating run fast, the scheduled CI job turns
//! it up).

use std::io::Write;
use std::time::{Duration, Instant};

use cosoft::net::tcp::{NetEvent, TcpClient, TcpHost, TcpHostConfig};
use cosoft::net::RecvError;
use cosoft::wire::{codec, InstanceId, Message, UserId};

const TIMEOUT: Duration = Duration::from_secs(10);

fn accept_one(host: &TcpHost) -> cosoft::net::ConnId {
    match host.events().recv_timeout(TIMEOUT).expect("accept") {
        NetEvent::Connected(c) => c,
        other => panic!("expected Connected, got {other:?}"),
    }
}

// Only the feature-gated injected-fault tests build payload blobs.
#[cfg_attr(not(feature = "fault-injection"), allow(dead_code))]
fn payload_msg(bytes: usize) -> Message {
    Message::CommandDelivery {
        from: InstanceId(1),
        command: "chaos-blob".into(),
        payload: (0..bytes).map(|i| (i % 251) as u8).collect(),
    }
}

/// Drives one round trip over a healthy client to prove the host (and
/// its poll thread) survived whatever the test just did to a peer.
fn assert_host_alive(host: &TcpHost, client: &TcpClient, conn: cosoft::net::ConnId) {
    client.send(&Message::Ping { nonce: 0xA11E }).expect("healthy send");
    loop {
        match host.events().recv_timeout(TIMEOUT).expect("healthy inbound") {
            NetEvent::Message(c, Message::Ping { nonce: 0xA11E }) => {
                assert_eq!(c, conn);
                break;
            }
            // Stale events from the evil peer may still be queued.
            _ => continue,
        }
    }
    host.send(conn, &Message::Pong { nonce: 0xA11E }).expect("healthy outbound");
    match client.recv_within(TIMEOUT).expect("healthy reply") {
        Message::Pong { nonce } => assert_eq!(nonce, 0xA11E),
        other => panic!("expected Pong, got {other:?}"),
    }
}

/// Collects `Disconnected` events for `window`, asserting exactly one
/// and that it names `victim`.
fn expect_one_disconnect(host: &TcpHost, victim: cosoft::net::ConnId) {
    let mut disconnects = Vec::new();
    let deadline = Instant::now() + TIMEOUT;
    while disconnects.is_empty() && Instant::now() < deadline {
        if let Ok(NetEvent::Disconnected(c)) = host.events().recv_timeout(Duration::from_millis(50))
        {
            disconnects.push(c);
        }
    }
    // A short grace to catch an (incorrect) duplicate teardown.
    while let Ok(event) = host.events().recv_timeout(Duration::from_millis(200)) {
        if let NetEvent::Disconnected(c) = event {
            disconnects.push(c);
        }
    }
    assert_eq!(disconnects, vec![victim], "exactly one Disconnected for the torn connection");
}

#[test]
fn torn_frame_kills_only_its_own_connection() {
    let host = TcpHost::bind("127.0.0.1:0").unwrap();
    let healthy = TcpClient::connect(host.local_addr()).unwrap();
    let healthy_conn = accept_one(&host);

    // Evil peer: one valid frame, then a frame header promising 64 bytes
    // followed by only 5 and a hard close — a torn frame.
    let mut evil = std::net::TcpStream::connect(host.local_addr()).unwrap();
    let evil_conn = accept_one(&host);
    evil.write_all(&codec::frame_message(&Message::Ping { nonce: 1 })).unwrap();
    match host.events().recv_timeout(TIMEOUT).expect("valid frame first") {
        NetEvent::Message(c, Message::Ping { nonce: 1 }) => assert_eq!(c, evil_conn),
        other => panic!("expected the valid Ping, got {other:?}"),
    }
    evil.write_all(&64u32.to_le_bytes()).unwrap();
    evil.write_all(&[0xDE, 0xAD, 0xBE, 0xEF, 0x00]).unwrap();
    drop(evil);

    expect_one_disconnect(&host, evil_conn);
    assert_host_alive(&host, &healthy, healthy_conn);
}

#[test]
fn garbage_frame_body_kills_only_its_own_connection() {
    let host = TcpHost::bind("127.0.0.1:0").unwrap();
    let healthy = TcpClient::connect(host.local_addr()).unwrap();
    let healthy_conn = accept_one(&host);

    // Complete frame, nonsense body: an unknown tag the decoder rejects.
    let mut evil = std::net::TcpStream::connect(host.local_addr()).unwrap();
    let evil_conn = accept_one(&host);
    evil.write_all(&4u32.to_le_bytes()).unwrap();
    evil.write_all(&[0xEE, 0xEE, 0xEE, 0xEE]).unwrap();

    expect_one_disconnect(&host, evil_conn);
    // The evil socket was shut down by the host, not the test.
    assert_host_alive(&host, &healthy, healthy_conn);
    drop(evil);
}

#[test]
fn oversized_length_header_kills_only_its_own_connection() {
    let host = TcpHost::bind("127.0.0.1:0").unwrap();
    let healthy = TcpClient::connect(host.local_addr()).unwrap();
    let healthy_conn = accept_one(&host);

    // A length header past MAX_LEN must be fatal before any allocation.
    let mut evil = std::net::TcpStream::connect(host.local_addr()).unwrap();
    let evil_conn = accept_one(&host);
    evil.write_all(&u32::MAX.to_le_bytes()).unwrap();

    expect_one_disconnect(&host, evil_conn);
    assert_host_alive(&host, &healthy, healthy_conn);
    drop(evil);
}

#[test]
fn stalled_peer_hits_the_handshake_deadline() {
    let config =
        TcpHostConfig { handshake_timeout: Duration::from_millis(250), ..TcpHostConfig::default() };
    let host = TcpHost::bind_with_config("127.0.0.1:0", config).unwrap();

    // Speaking peer: sends a frame immediately, must outlive the
    // deadline untouched.
    let speaking = TcpClient::connect(host.local_addr()).unwrap();
    let speaking_conn = accept_one(&host);
    speaking.send(&Message::Ping { nonce: 7 }).unwrap();
    match host.events().recv_timeout(TIMEOUT).expect("handshake frame") {
        NetEvent::Message(c, Message::Ping { nonce: 7 }) => assert_eq!(c, speaking_conn),
        other => panic!("expected Ping, got {other:?}"),
    }

    // Stalled peer: connects, never writes a byte.
    let stalled = std::net::TcpStream::connect(host.local_addr()).unwrap();
    let stalled_conn = accept_one(&host);

    expect_one_disconnect(&host, stalled_conn);
    assert_eq!(host.stats().handshake_timeouts, 1);
    // Well past the stalled peer's deadline, the speaking peer (whose
    // deadline was met) still exchanges traffic.
    assert_host_alive(&host, &speaking, speaking_conn);
    drop(stalled);
}

#[test]
fn recv_within_distinguishes_silent_peer_from_dead_peer() {
    let host = TcpHost::bind("127.0.0.1:0").unwrap();
    let client = TcpClient::connect(host.local_addr()).unwrap();
    let conn = accept_one(&host);

    // Peer alive but silent: a timeout, not a disconnect.
    match client.recv_within(Duration::from_millis(200)) {
        Err(RecvError::Timeout) => {}
        other => panic!("silent-but-alive peer must time out, got {other:?}"),
    }

    // Still alive: a reply arrives on the same connection.
    host.send(conn, &Message::Pong { nonce: 9 }).unwrap();
    match client.recv_within(TIMEOUT) {
        Ok(Message::Pong { nonce: 9 }) => {}
        other => panic!("expected Pong, got {other:?}"),
    }

    // Now actually dead: a disconnect, not a timeout.
    host.disconnect(conn);
    let started = Instant::now();
    match client.recv_within(TIMEOUT) {
        Err(RecvError::Disconnected) => {}
        other => panic!("dead peer must report Disconnected, got {other:?}"),
    }
    assert!(
        started.elapsed() < TIMEOUT,
        "disconnect must surface promptly, not by exhausting the timeout"
    );
}

#[test]
fn pump_for_returns_on_time_against_a_silent_server() {
    use cosoft::core::session::Session;
    use cosoft::runtime::{TcpServer, TcpSession};
    use cosoft::uikit::{spec, Toolkit};

    let server = TcpServer::spawn("127.0.0.1:0").expect("bind");
    let session = Session::new(
        Toolkit::from_tree(spec::build_tree(r#"form f { textfield t text="" }"#).unwrap()),
        UserId(1),
        "chaos-host",
        "tcp-chaos-test",
    );
    let mut tcp = TcpSession::connect(server.addr(), session).expect("register");

    // Registered and idle: a pump window against a silent (but alive)
    // server returns close to on time instead of wedging.
    let window = Duration::from_millis(300);
    let started = Instant::now();
    tcp.pump_for(window).expect("pump over silent server");
    let elapsed = started.elapsed();
    assert!(elapsed >= window, "pump_for returned early: {elapsed:?}");
    assert!(elapsed < window + TIMEOUT, "pump_for wedged: {elapsed:?}");
    assert!(tcp.session().instance().is_some(), "session lost its registration while idle");

    // Server gone for good: pump_for still honors its window and
    // returns — a dead receiver must not hang or hot-spin the caller.
    drop(server);
    std::thread::sleep(Duration::from_millis(100));
    let started = Instant::now();
    tcp.pump_for(window).expect("pump over dead server");
    let elapsed = started.elapsed();
    assert!(elapsed >= window, "pump_for returned early on dead server: {elapsed:?}");
    assert!(elapsed < window + TIMEOUT, "pump_for wedged on dead server: {elapsed:?}");
}

/// Kernel-boundary faults, driven by the deterministic `FaultInjector`.
#[cfg(feature = "fault-injection")]
mod injected {
    use super::*;
    use std::sync::Arc;

    use cosoft::net::tcp::ConnId;
    use cosoft::net::{FaultInjector, ReadFault, WriteFault};

    #[test]
    fn scripted_partial_writes_deliver_frames_intact() {
        let faults = Arc::new(FaultInjector::scripted());
        // A storm of tiny cuts across several flush attempts: every
        // frame boundary and the mid-frame head accounting get hit.
        faults.script_writes(
            ConnId(1),
            [
                WriteFault::Truncate(1),
                WriteFault::Truncate(2),
                WriteFault::WouldBlock,
                WriteFault::Truncate(3),
                WriteFault::Truncate(64),
                WriteFault::WouldBlock,
                WriteFault::Truncate(700),
                WriteFault::Pass,
                WriteFault::Truncate(5),
            ],
        );
        let host =
            TcpHost::bind_with_faults("127.0.0.1:0", TcpHostConfig::default(), faults.clone())
                .unwrap();
        let client = TcpClient::connect(host.local_addr()).unwrap();
        let conn = accept_one(&host);

        let sent: Vec<Message> = (0..6).map(|i| payload_msg(512 + i * 137)).collect();
        for msg in &sent {
            host.send(conn, msg).unwrap();
        }
        for expected in &sent {
            let got = client.recv_within(TIMEOUT).expect("frame despite partial writes");
            assert_eq!(&got, expected, "frame corrupted by partial-write accounting");
        }
        // The outbox may drain between sends, stranding tail faults with
        // nothing to cut; keep traffic flowing until the schedule is
        // fully consumed.
        let deadline = Instant::now() + TIMEOUT;
        let mut nonce = 0;
        while faults.pending_write_faults() > 0 {
            assert!(Instant::now() < deadline, "write-fault schedule never fully ran");
            host.send(conn, &Message::Pong { nonce }).unwrap();
            nonce += 1;
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(faults.faults_injected() >= 8);
        // No teardown: the connection survives the storm.
        client.send(&Message::Ping { nonce: 3 }).unwrap();
        match host.events().recv_timeout(TIMEOUT).expect("still alive") {
            NetEvent::Message(c, Message::Ping { nonce: 3 }) => assert_eq!(c, conn),
            other => panic!("expected Ping, got {other:?}"),
        }
    }

    #[test]
    fn wouldblock_storm_recovers_without_teardown() {
        let faults = Arc::new(FaultInjector::scripted());
        faults.script_writes(ConnId(1), std::iter::repeat_n(WriteFault::WouldBlock, 100));
        let host =
            TcpHost::bind_with_faults("127.0.0.1:0", TcpHostConfig::default(), faults.clone())
                .unwrap();
        let client = TcpClient::connect(host.local_addr()).unwrap();
        let conn = accept_one(&host);

        let msg = payload_msg(2048);
        host.send(conn, &msg).unwrap();
        let got = client.recv_within(TIMEOUT).expect("frame after the storm");
        assert_eq!(got, msg);
        assert_eq!(faults.pending_write_faults(), 0);
        assert!(faults.faults_injected() >= 100);
    }

    #[test]
    fn injected_write_error_tears_down_exactly_once() {
        let faults = Arc::new(FaultInjector::scripted());
        faults.script_writes(ConnId(1), [WriteFault::Error(std::io::ErrorKind::ConnectionReset)]);
        let host =
            TcpHost::bind_with_faults("127.0.0.1:0", TcpHostConfig::default(), faults.clone())
                .unwrap();
        let victim = TcpClient::connect(host.local_addr()).unwrap();
        let victim_conn = accept_one(&host);
        let healthy = TcpClient::connect(host.local_addr()).unwrap();
        let healthy_conn = accept_one(&host);

        host.send(victim_conn, &Message::Pong { nonce: 1 }).unwrap();
        expect_one_disconnect(&host, victim_conn);
        assert_host_alive(&host, &healthy, healthy_conn);
        drop(victim);
    }

    #[test]
    fn scripted_short_reads_reassemble_frames_intact() {
        let faults = Arc::new(FaultInjector::scripted());
        // Byte-at-a-time and small odd sizes: the frame reassembler sees
        // headers and bodies split at every offset.
        faults.script_reads(ConnId(1), (0..400).map(|i| ReadFault::Short(1 + i % 7)));
        let host =
            TcpHost::bind_with_faults("127.0.0.1:0", TcpHostConfig::default(), faults.clone())
                .unwrap();
        let client = TcpClient::connect(host.local_addr()).unwrap();
        let conn = accept_one(&host);

        let sent: Vec<Message> = (0..4).map(|i| payload_msg(64 + i * 41)).collect();
        for msg in &sent {
            client.send(msg).unwrap();
        }
        for expected in &sent {
            match host.events().recv_timeout(TIMEOUT).expect("frame despite short reads") {
                NetEvent::Message(c, got) => {
                    assert_eq!(c, conn);
                    assert_eq!(&got, expected, "frame corrupted by short-read reassembly");
                }
                other => panic!("expected Message, got {other:?}"),
            }
        }
        assert!(faults.faults_injected() > 0);
    }

    #[test]
    fn injected_read_stall_delays_but_does_not_drop() {
        let faults = Arc::new(FaultInjector::scripted());
        faults.script_reads(ConnId(1), std::iter::repeat_n(ReadFault::WouldBlock, 50));
        let host =
            TcpHost::bind_with_faults("127.0.0.1:0", TcpHostConfig::default(), faults.clone())
                .unwrap();
        let client = TcpClient::connect(host.local_addr()).unwrap();
        let conn = accept_one(&host);

        client.send(&Message::Ping { nonce: 0x57A11 }).unwrap();
        match host.events().recv_timeout(TIMEOUT).expect("frame after the stall") {
            NetEvent::Message(c, Message::Ping { nonce: 0x57A11 }) => assert_eq!(c, conn),
            other => panic!("expected Ping, got {other:?}"),
        }
        assert!(faults.faults_injected() >= 50);
    }

    /// Seeded random chaos soak: several clients echo traffic through a
    /// host rolling recoverable faults on every I/O operation. All
    /// traffic must complete, nothing may disconnect. `COSOFT_CHAOS_STEPS`
    /// scales messages per client (the scheduled CI job turns it up);
    /// `COSOFT_CHAOS_SEED` replays a specific schedule.
    #[test]
    fn chaos_soak() {
        let steps: usize =
            std::env::var("COSOFT_CHAOS_STEPS").ok().and_then(|s| s.parse().ok()).unwrap_or(25);
        let seed: u64 = std::env::var("COSOFT_CHAOS_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0xC050_7CA0_5EED);
        const CLIENTS: u64 = 4;

        let faults = Arc::new(FaultInjector::random(seed, 150, 100, 150));
        let host =
            TcpHost::bind_with_faults("127.0.0.1:0", TcpHostConfig::default(), faults.clone())
                .unwrap();
        let addr = host.local_addr();

        // Each worker returns its client so the connection stays open
        // until the echo loop finishes: a drop on worker exit would
        // surface a legitimate Disconnected the loop must treat as fatal
        // for everyone else.
        let workers: Vec<_> = (0..CLIENTS)
            .map(|c| {
                std::thread::spawn(move || {
                    let client = TcpClient::connect(addr).expect("connect");
                    for i in 0..steps {
                        let msg = Message::CommandDelivery {
                            from: InstanceId(c),
                            command: format!("soak-{c}-{i}"),
                            payload: vec![(c as u8) ^ (i as u8); 256 + (i * 97) % 2048],
                        };
                        client.send(&msg).expect("soak send");
                        let echo = client.recv_within(TIMEOUT).expect("soak echo");
                        assert_eq!(echo, msg, "echo corrupted under random faults");
                    }
                    client
                })
            })
            .collect();

        // Echo loop: every inbound message goes straight back out on the
        // same connection; any Disconnected fails the soak.
        let total = CLIENTS as usize * steps;
        let mut echoed = 0;
        let deadline = Instant::now() + TIMEOUT + Duration::from_millis(20 * total as u64);
        while echoed < total {
            assert!(Instant::now() < deadline, "soak wedged at {echoed}/{total} echoes");
            match host.events().recv_timeout(Duration::from_millis(100)) {
                Ok(NetEvent::Connected(_)) => {}
                Ok(NetEvent::Message(conn, msg)) => {
                    host.send(conn, &msg).expect("echo send");
                    echoed += 1;
                }
                Ok(NetEvent::Disconnected(c)) => {
                    panic!("recoverable faults must never tear a connection down, lost {c:?}")
                }
                Err(_) => {}
            }
        }
        let clients: Vec<TcpClient> =
            workers.into_iter().map(|w| w.join().expect("soak worker")).collect();
        drop(clients);
        assert!(faults.faults_injected() > 0, "the soak must actually inject faults");
    }
}
