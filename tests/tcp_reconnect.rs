//! Real-socket reconnect/resume tests: a client whose connection dies
//! mid-session redials with backoff, rejoins under its resume token, and
//! reconverges via the §3.1 `CopyFrom` resync — the TCP twin of the
//! deterministic `reconnect_sim` tests.

use std::time::Duration;

use cosoft::core::session::Session;
use cosoft::net::tcp::{ReconnectPolicy, TcpHostConfig};
use cosoft::runtime::{TcpServer, TcpSession};
use cosoft::server::LivenessConfig;
use cosoft::uikit::{spec, Toolkit};
use cosoft::wire::{AttrName, EventKind, ObjectPath, UiEvent, UserId, Value};

const FORM: &str = r#"form pad { textfield line text="" }"#;
const TIMEOUT: Duration = Duration::from_secs(10);

fn make_session(user: u64) -> Session {
    Session::new(
        Toolkit::from_tree(spec::build_tree(FORM).expect("static spec")),
        UserId(user),
        &format!("host{user}"),
        "tcp-reconnect-test",
    )
}

fn text_of(s: &Session, p: &ObjectPath) -> Option<String> {
    let tree = s.toolkit().tree();
    let id = tree.resolve(p)?;
    tree.attr(id, &AttrName::Text).ok().and_then(|v| v.as_text().map(str::to_owned))
}

fn fast_policy() -> ReconnectPolicy {
    ReconnectPolicy {
        max_attempts: 40,
        base_delay: Duration::from_millis(20),
        max_delay: Duration::from_millis(100),
        jitter: 0.2,
        jitter_seed: Some(0xC05F_0F7),
    }
}

fn graceful_server() -> TcpServer {
    TcpServer::spawn_with_liveness(
        "127.0.0.1:0",
        TcpHostConfig::default(),
        // 30s grace: effectively "within grace" for the whole test.
        LivenessConfig { grace_us: 30_000_000, idle_timeout_us: 0, max_quarantined: 0 },
    )
    .expect("bind")
}

#[test]
fn severed_client_reconnects_and_resumes_its_instance() {
    let server = graceful_server();
    let mut a = TcpSession::connect(server.addr(), make_session(1)).expect("connect a");
    let mut b = TcpSession::connect_with_reconnect(server.addr(), make_session(2), fast_policy())
        .expect("connect b");
    let b_instance = b.session().instance().expect("registered");
    assert!(b.session().resume_token().is_some(), "grace > 0 mints resume tokens");

    let line = ObjectPath::parse("pad.line").expect("static");
    let remote = b.session().gid(&line).expect("registered");
    a.session_mut().couple(&line, remote).expect("registered");
    let p = line.clone();
    assert!(a.pump_until(TIMEOUT, move |s| s.is_coupled(&p)).expect("pump"));
    let p = line.clone();
    assert!(b.pump_until(TIMEOUT, move |s| s.is_coupled(&p)).expect("pump"));

    // The network "fails" under b; the reconnect loop starts redialing.
    b.client().sever();

    // Meanwhile a changes the shared state — b misses this on the wire.
    a.session_mut()
        .user_event(UiEvent::new(
            line.clone(),
            EventKind::TextCommitted,
            vec![Value::Text("while b was gone".into())],
        ))
        .expect("valid event");
    a.flush().expect("flush");
    a.pump_for(Duration::from_millis(200)).expect("pump");

    // b's pump notices the reconnect, rejoins, and resyncs: same
    // instance id, couple intact, missed state pulled via CopyFrom. Both
    // ends keep pumping — a must serve the resync's StateRequest.
    let deadline = std::time::Instant::now() + TIMEOUT;
    let mut converged = false;
    while std::time::Instant::now() < deadline {
        a.pump_for(Duration::from_millis(50)).expect("pump a");
        b.pump_for(Duration::from_millis(50)).expect("pump b");
        if text_of(b.session(), &line).as_deref() == Some("while b was gone") {
            converged = true;
            break;
        }
    }
    assert!(converged, "b reconverged on the state it missed");
    assert_eq!(b.session().instance(), Some(b_instance), "resumed under the same id");
    assert!(b.client().reconnects() >= 1);
    assert!(!b.session().is_rejoining(), "rejoin completed");
    let stats = server.server_stats();
    assert_eq!(stats.resumes, 1);
    assert_eq!(stats.quarantined_instances, 0);

    // The revived couple still works in both directions.
    b.session_mut()
        .user_event(UiEvent::new(
            line.clone(),
            EventKind::TextCommitted,
            vec![Value::Text("b is back".into())],
        ))
        .expect("valid event");
    b.flush().expect("flush");
    let p = line.clone();
    assert!(a
        .pump_until(TIMEOUT, move |s| text_of(s, &p).as_deref() == Some("b is back"))
        .expect("pump"));
    b.pump_for(Duration::from_millis(100)).expect("pump");

    a.close();
    b.close();
}

#[test]
fn close_stops_the_reconnect_loop() {
    let server = graceful_server();
    let b = TcpSession::connect_with_reconnect(server.addr(), make_session(2), fast_policy())
        .expect("connect b");
    let reconnects_handle = b.client().reconnects();
    assert_eq!(reconnects_handle, 0);
    // A deliberate close must not be mistaken for a network failure.
    b.close();
    std::thread::sleep(Duration::from_millis(300));
    let stats = server.server_stats();
    assert_eq!(stats.resumes, 0, "no rejoin after a deliberate close");
}
