//! Regression tests for the server's outgoing path: per-connection
//! writer queues mean one stalled client cannot delay broadcasts to its
//! peers, consumers whose queues stay full are evicted (and take the
//! §3.2 auto-decoupling path), and a `CopyFrom` whose source dies is
//! failed back to the requester instead of hanging.

use std::io::Write;
use std::time::{Duration, Instant};

use cosoft::net::tcp::TcpHostConfig;
use cosoft::net::TcpClient;
use cosoft::runtime::TcpServer;
use cosoft::wire::{
    codec, CopyMode, GlobalObjectId, InstanceId, Message, ObjectPath, Target, UserId,
};

const TIMEOUT: Duration = Duration::from_secs(10);

fn register(client: &TcpClient, user: u64, host: &str) -> InstanceId {
    client
        .send(&Message::Register { user: UserId(user), host: host.into(), app_name: "t".into() })
        .expect("send register");
    match client.recv_timeout(TIMEOUT) {
        Some(Message::Welcome { instance }) => instance,
        other => panic!("expected Welcome, got {other:?}"),
    }
}

fn gid(i: InstanceId, p: &str) -> GlobalObjectId {
    GlobalObjectId::new(i, ObjectPath::parse(p).unwrap())
}

/// A stalled client (socket accepted and registered, never reading) must
/// not delay broadcast delivery to a healthy peer beyond the enqueue
/// timeout, and must eventually be evicted and auto-deregistered.
#[test]
fn stalled_client_is_evicted_and_does_not_starve_broadcasts() {
    let config = TcpHostConfig {
        queue_capacity: 8,
        enqueue_timeout: Duration::from_millis(200),
        ..TcpHostConfig::default()
    };
    let server = TcpServer::spawn_with_config("127.0.0.1:0", config).expect("bind");

    let alice = TcpClient::connect(server.addr()).expect("connect alice");
    let bob = TcpClient::connect(server.addr()).expect("connect bob");
    register(&alice, 1, "alice");
    register(&bob, 2, "bob");

    // The stalled client registers over a raw socket and then never
    // reads a single byte.
    let mut stalled = std::net::TcpStream::connect(server.addr()).expect("connect stalled");
    stalled
        .write_all(&codec::frame_message(&Message::Register {
            user: UserId(3),
            host: "stalled".into(),
            app_name: "t".into(),
        }))
        .expect("register stalled");

    // Wait until the server has registered all three.
    let deadline = Instant::now() + TIMEOUT;
    loop {
        alice.send(&Message::QueryInstances).expect("query");
        match alice.recv_timeout(TIMEOUT) {
            Some(Message::InstanceList { entries }) if entries.len() == 3 => break,
            Some(_) => {}
            None => panic!("no InstanceList reply"),
        }
        assert!(Instant::now() < deadline, "third client never registered");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Alice broadcasts big payloads. Every broadcast also targets the
    // stalled client, whose queue fills up; bob must keep receiving
    // promptly the whole time.
    let payload = vec![0x5A_u8; 256 * 1024];
    let mut max_bob_latency = Duration::ZERO;
    for round in 0..64u32 {
        alice
            .send(&Message::CoSendCommand {
                to: Target::Broadcast,
                command: format!("round-{round}"),
                payload: payload.clone(),
            })
            .expect("broadcast");
        let t0 = Instant::now();
        loop {
            match bob.recv_timeout(TIMEOUT) {
                Some(Message::CommandDelivery { command, .. })
                    if command == format!("round-{round}") =>
                {
                    break
                }
                Some(_) => {}
                None => panic!("bob never received broadcast round {round}"),
            }
        }
        max_bob_latency = max_bob_latency.max(t0.elapsed());
    }
    // The queue in front of the stalled consumer holds at most
    // `queue_capacity` writes; a blocked enqueue waits at most
    // `enqueue_timeout` before the consumer is evicted. A healthy peer
    // therefore sees at most ~one enqueue timeout of added latency;
    // allow generous slack for scheduling noise.
    assert!(
        max_bob_latency < Duration::from_secs(5),
        "broadcast to healthy peer delayed {max_bob_latency:?} by a stalled consumer"
    );

    // The stalled consumer was evicted: the transport counted it, and
    // the server auto-deregistered the instance (§3.2 decoupling path).
    let deadline = Instant::now() + TIMEOUT;
    loop {
        let net = server.net_stats();
        let core = server.server_stats();
        if net.slow_consumer_evictions >= 1 && core.registered_instances == 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "stalled consumer never evicted: net={net:?} core={core:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Frames abandoned in the evicted connection's queue are counted,
    // not silently discarded: the enqueue that timed out plus the
    // full queue (that fullness is what triggered the eviction) all
    // land in `frames_dropped`.
    let net = server.net_stats();
    assert!(
        net.frames_dropped >= 8,
        "drained queue of evicted consumer not accounted: frames_dropped={}",
        net.frames_dropped
    );

    // Observability counters moved: real traffic in and out.
    let net = server.net_stats();
    assert!(net.frames_in > 64, "frames_in={}", net.frames_in);
    assert!(net.bytes_out > payload.len() as u64, "bytes_out={}", net.bytes_out);
    let core = server.server_stats();
    assert!(core.messages_out as usize >= 64, "messages_out={}", core.messages_out);
    assert!(core.max_fanout >= 2, "max_fanout={}", core.max_fanout);
}

/// A `CopyFrom` whose source disconnects before replying completes with
/// an error instead of hanging the requester forever.
#[test]
fn copy_from_dead_source_fails_over_tcp() {
    let server = TcpServer::spawn("127.0.0.1:0").expect("bind");
    let alice = TcpClient::connect(server.addr()).expect("connect alice");
    let src = TcpClient::connect(server.addr()).expect("connect source");
    let a = register(&alice, 1, "alice");
    let s = register(&src, 2, "source");

    alice
        .send(&Message::CopyFrom {
            src: gid(s, "form"),
            dst: gid(a, "form"),
            mode: CopyMode::Strict,
            req_id: 11,
        })
        .expect("copy-from");

    // The source sees the StateRequest but dies instead of replying.
    match src.recv_timeout(TIMEOUT) {
        Some(Message::StateRequest { .. }) => {}
        other => panic!("expected StateRequest at source, got {other:?}"),
    }
    src.close();

    match alice.recv_timeout(TIMEOUT) {
        Some(Message::ErrorReply { context, reason }) => {
            assert_eq!(context, "copy");
            assert!(reason.contains("source"), "unexpected reason: {reason}");
        }
        other => panic!("expected ErrorReply for the dead source, got {other:?}"),
    }
}
