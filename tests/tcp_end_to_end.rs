//! End-to-end tests over real TCP sockets: the same server/session cores
//! that run on the simulated network, here distributed across threads.

use std::time::Duration;

use cosoft::core::session::Session;
use cosoft::runtime::{TcpServer, TcpSession};
use cosoft::uikit::{spec, Toolkit};
use cosoft::wire::{AttrName, CopyMode, EventKind, ObjectPath, UiEvent, UserId, Value};

const FORM: &str = r#"form pad { textfield line text="" canvas board }"#;
const TIMEOUT: Duration = Duration::from_secs(10);

fn make_session(user: u64) -> Session {
    Session::new(
        Toolkit::from_tree(spec::build_tree(FORM).expect("static spec")),
        UserId(user),
        &format!("host{user}"),
        "tcp-test",
    )
}

fn text_of(s: &Session, p: &ObjectPath) -> Option<String> {
    let tree = s.toolkit().tree();
    let id = tree.resolve(p)?;
    tree.attr(id, &AttrName::Text).ok().and_then(|v| v.as_text().map(str::to_owned))
}

#[test]
fn couple_and_sync_over_tcp() {
    let server = TcpServer::spawn("127.0.0.1:0").expect("bind");
    let mut a = TcpSession::connect(server.addr(), make_session(1)).expect("connect a");
    let mut b = TcpSession::connect(server.addr(), make_session(2)).expect("connect b");
    assert!(a.session().instance().is_some());
    assert!(b.session().instance().is_some());

    let line = ObjectPath::parse("pad.line").expect("static");
    let remote = b.session().gid(&line).expect("registered");
    a.session_mut().couple(&line, remote).expect("registered");
    let p = line.clone();
    assert!(a.pump_until(TIMEOUT, move |s| s.is_coupled(&p)).expect("pump"));
    let p = line.clone();
    assert!(b.pump_until(TIMEOUT, move |s| s.is_coupled(&p)).expect("pump"));

    // Event replication across real sockets.
    a.session_mut()
        .user_event(UiEvent::new(
            line.clone(),
            EventKind::TextCommitted,
            vec![Value::Text("over tcp".into())],
        ))
        .expect("valid event");
    a.flush().expect("flush");
    let p = line.clone();
    assert!(b
        .pump_until(TIMEOUT, move |s| text_of(s, &p).as_deref() == Some("over tcp"))
        .expect("pump"));
    // Complete the floor-control round so the lock releases.
    a.pump_for(Duration::from_millis(200)).expect("pump");
    b.pump_for(Duration::from_millis(100)).expect("pump");

    // Both ends settled and re-enabled.
    let id = a.session().toolkit().tree().resolve(&line).expect("widget");
    assert!(a.session().toolkit().tree().widget(id).expect("widget").is_interactable());

    a.close();
    b.close();
}

#[test]
fn state_copy_over_tcp() {
    let server = TcpServer::spawn("127.0.0.1:0").expect("bind");
    let mut a = TcpSession::connect(server.addr(), make_session(1)).expect("connect a");
    let mut b = TcpSession::connect(server.addr(), make_session(2)).expect("connect b");

    let line = ObjectPath::parse("pad.line").expect("static");
    // Fill b's field locally (uncoupled → no traffic).
    b.session_mut()
        .user_event(UiEvent::new(
            line.clone(),
            EventKind::TextCommitted,
            vec![Value::Text("pull me".into())],
        ))
        .expect("valid event");

    // a pulls it with CopyFrom.
    let src = b.session().gid(&line).expect("registered");
    a.session_mut().copy_from(src, &line, CopyMode::Strict).expect("registered");
    a.flush().expect("flush");
    // b must serve the StateRequest.
    b.pump_for(Duration::from_millis(300)).expect("pump");
    let p = line.clone();
    assert!(a
        .pump_until(TIMEOUT, move |s| text_of(s, &p).as_deref() == Some("pull me"))
        .expect("pump"));

    a.close();
    b.close();
}

#[test]
fn crash_over_tcp_auto_decouples() {
    let server = TcpServer::spawn("127.0.0.1:0").expect("bind");
    let mut a = TcpSession::connect(server.addr(), make_session(1)).expect("connect a");
    let b = TcpSession::connect(server.addr(), make_session(2)).expect("connect b");

    let line = ObjectPath::parse("pad.line").expect("static");
    let remote = b.session().gid(&line).expect("registered");
    a.session_mut().couple(&line, remote).expect("registered");
    let p = line.clone();
    assert!(a.pump_until(TIMEOUT, move |s| s.is_coupled(&p)).expect("pump"));

    // b vanishes without a goodbye; the server must decouple a.
    drop(b);
    let p = line.clone();
    assert!(a.pump_until(TIMEOUT, move |s| !s.is_coupled(&p)).expect("pump"));

    a.close();
}

#[test]
fn server_survives_garbage_bytes() {
    use std::io::Write;
    let server = TcpServer::spawn("127.0.0.1:0").expect("bind");

    // A hostile/broken client sends garbage framing.
    let mut raw = std::net::TcpStream::connect(server.addr()).expect("connect");
    raw.write_all(&[0xff; 64]).expect("write garbage");
    drop(raw);

    // A well-behaved client still works afterwards.
    let a = TcpSession::connect(server.addr(), make_session(1)).expect("connect after garbage");
    assert!(a.session().instance().is_some());
    a.close();
}
