//! Access-control scenarios over the full stack: the server's
//! three-valued permission tuples gating coupling, copying and events
//! (§2.2), in classroom-shaped situations.

use cosoft::core::harness::SimHarness;
use cosoft::core::session::{Session, SessionEvent};
use cosoft::uikit::{spec, Toolkit};
use cosoft::wire::{
    AccessRight, AttrName, CopyMode, EventKind, ObjectPath, UiEvent, UserId, Value,
};

const FORM: &str = r#"form f { textfield t text="" }"#;

fn path(p: &str) -> ObjectPath {
    ObjectPath::parse(p).expect("valid path")
}

fn session(user: u64) -> Session {
    Session::new(
        Toolkit::from_tree(spec::build_tree(FORM).expect("static")),
        UserId(user),
        &format!("ws{user}"),
        "acl-test",
    )
}

fn denied_count(s: &mut Session) -> usize {
    s.take_events()
        .into_iter()
        .filter(|e| matches!(e, SessionEvent::PermissionDenied { .. }))
        .count()
}

#[test]
fn read_only_observer_can_copy_but_not_couple() {
    let mut h = SimHarness::new(1);
    let teacher = h.add_session(session(1));
    let observer = h.add_session(session(2));
    h.settle();

    // The teacher allows observation only.
    h.session_mut(teacher)
        .set_permission(UserId(2), &path("f"), AccessRight::Read)
        .expect("registered");
    // But first lock everything else down.
    h.session_mut(teacher)
        .set_permission(UserId(2), &path("f.t"), AccessRight::Read)
        .expect("registered");
    h.settle();

    // Observer may pull the teacher's state...
    h.session_mut(teacher)
        .user_event(UiEvent::new(
            path("f.t"),
            EventKind::TextCommitted,
            vec![Value::Text("lecture notes".into())],
        ))
        .expect("local event");
    h.settle();
    let src = h.session(teacher).gid(&path("f.t")).expect("registered");
    h.session_mut(observer).copy_from(src.clone(), &path("f.t"), CopyMode::Strict).expect("ok");
    h.settle();
    let tree = h.session(observer).toolkit().tree();
    let id = tree.resolve(&path("f.t")).expect("widget");
    assert_eq!(tree.attr(id, &AttrName::Text).expect("attr"), &Value::Text("lecture notes".into()));

    // ...but may not couple with it (write).
    h.session_mut(observer).couple(&path("f.t"), src).expect("registered");
    h.settle();
    assert_eq!(denied_count(h.session_mut(observer)), 1);
    assert!(!h.session(observer).is_coupled(&path("f.t")));
}

#[test]
fn rights_inherit_from_complex_objects() {
    let mut h = SimHarness::new(2);
    let owner = h.add_session(session(1));
    let peer = h.add_session(session(2));
    h.settle();

    // Denying the form denies its components too (ancestor inheritance).
    h.session_mut(owner)
        .set_permission(UserId(2), &path("f"), AccessRight::Denied)
        .expect("registered");
    h.settle();

    let field = h.session(owner).gid(&path("f.t")).expect("registered");
    h.session_mut(peer).copy_from(field, &path("f.t"), CopyMode::Strict).expect("ok");
    h.settle();
    assert_eq!(denied_count(h.session_mut(peer)), 1);
}

#[test]
fn event_on_foreign_object_checks_write_right() {
    let mut h = SimHarness::new(3);
    let owner = h.add_session(session(1));
    let peer = h.add_session(session(2));
    h.settle();

    // Couple first (permissive default), then revoke.
    let field = h.session(owner).gid(&path("f.t")).expect("registered");
    h.session_mut(peer).couple(&path("f.t"), field).expect("registered");
    h.settle();
    assert!(h.session(peer).is_coupled(&path("f.t")));
    h.session_mut(owner)
        .set_permission(UserId(2), &path("f.t"), AccessRight::Read)
        .expect("registered");
    h.settle();

    // The peer's events on its own object are fine (it owns the origin)…
    h.session_mut(peer)
        .user_event(UiEvent::new(
            path("f.t"),
            EventKind::TextCommitted,
            vec![Value::Text("still allowed".into())],
        ))
        .expect("valid");
    h.settle();
    // …because write checks apply to the *origin* object, which the peer
    // owns. The owner keeps full control of its own object as well.
    h.session_mut(owner)
        .user_event(UiEvent::new(
            path("f.t"),
            EventKind::TextCommitted,
            vec![Value::Text("owner writes".into())],
        ))
        .expect("valid");
    h.settle();
    let tree = h.session(peer).toolkit().tree();
    let id = tree.resolve(&path("f.t")).expect("widget");
    assert_eq!(tree.attr(id, &AttrName::Text).expect("attr"), &Value::Text("owner writes".into()));
}

#[test]
fn restrictive_server_default_denies_strangers() {
    // A server configured with a Denied default (e.g. an exam setting).
    let mut h = SimHarness::new(4);
    h.server = cosoft::server::ServerCore::with_default_right(AccessRight::Denied);
    let a = h.add_session(session(1));
    let b = h.add_session(session(2));
    h.settle();

    let other = h.session(b).gid(&path("f.t")).expect("registered");
    h.session_mut(a).couple(&path("f.t"), other.clone()).expect("registered");
    h.settle();
    assert_eq!(denied_count(h.session_mut(a)), 1);

    // Explicit grant opens exactly that object.
    h.session_mut(b)
        .set_permission(UserId(1), &path("f.t"), AccessRight::Write)
        .expect("registered");
    h.settle();
    h.session_mut(a).couple(&path("f.t"), other).expect("registered");
    h.settle();
    assert!(h.session(a).is_coupled(&path("f.t")));
}

#[test]
fn remote_copy_needs_rights_on_both_ends() {
    let mut h = SimHarness::new(5);
    let third = h.add_session(session(9));
    let src_node = h.add_session(session(1));
    let dst_node = h.add_session(session(2));
    h.settle();

    // src denies reads to user 9.
    h.session_mut(src_node)
        .set_permission(UserId(9), &path("f.t"), AccessRight::Denied)
        .expect("registered");
    h.settle();

    let src = h.session(src_node).gid(&path("f.t")).expect("registered");
    let dst = h.session(dst_node).gid(&path("f.t")).expect("registered");
    h.session_mut(third).remote_copy(src.clone(), dst.clone(), CopyMode::Strict);
    h.settle();
    assert_eq!(denied_count(h.session_mut(third)), 1);

    // Granting read on src is enough (dst is writable by default).
    h.session_mut(src_node)
        .set_permission(UserId(9), &path("f.t"), AccessRight::Read)
        .expect("registered");
    h.settle();
    h.session_mut(third).remote_copy(src, dst, CopyMode::Strict);
    h.settle();
    assert_eq!(denied_count(h.session_mut(third)), 0);
}
