//! Randomized full-stack soak test: a long schedule mixing every protocol
//! operation — couples, decouples, events, state copies in all three
//! modes, undo/redo, permissions, commands, widget destruction and
//! instance crashes — must never panic, never wedge a lock, and keep the
//! surviving sessions' replicated coupling info symmetric.

use cosoft::core::harness::SimHarness;
use cosoft::core::session::Session;
use cosoft::net::sim::NodeId;
use cosoft::uikit::{spec, Toolkit};
use cosoft::wire::{AccessRight, CopyMode, EventKind, ObjectPath, Target, UiEvent, UserId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FORM: &str = r#"form f {
  textfield t text=""
  slider s value=0.5 min=0.0 max=1.0
  toggle g checked=false
  canvas c
  panel sub { textfield inner text="" }
}"#;

const PATHS: [&str; 6] = ["f.t", "f.s", "f.g", "f.c", "f.sub", "f.sub.inner"];

fn path(p: &str) -> ObjectPath {
    ObjectPath::parse(p).expect("valid")
}

fn random_event(rng: &mut StdRng, p: &str) -> UiEvent {
    match p {
        "f.t" | "f.sub.inner" => UiEvent::new(
            path(p),
            EventKind::TextCommitted,
            vec![Value::Text(format!("v{}", rng.gen::<u16>()))],
        ),
        "f.s" => UiEvent::new(
            path(p),
            EventKind::ValueChanged,
            vec![Value::Float(rng.gen_range(0.0..1.0))],
        ),
        "f.g" => UiEvent::new(path(p), EventKind::Toggled, vec![Value::Bool(rng.gen())]),
        "f.c" => UiEvent::new(
            path(p),
            EventKind::StrokeAdded,
            vec![Value::Stroke(vec![(rng.gen_range(0..100), rng.gen_range(0..100))])],
        ),
        _ => UiEvent::simple(path(p), EventKind::Custom("poke".into())),
    }
}

#[test]
fn thousand_step_soak_survives_everything() {
    let mut rng = StdRng::seed_from_u64(0xC050F7);
    let mut h = SimHarness::with_latency(99, 1_000);
    let mut alive: Vec<NodeId> = (0..6)
        .map(|u| {
            h.add_session(Session::new(
                Toolkit::from_tree(spec::build_tree(FORM).expect("static")),
                UserId(u + 1),
                &format!("h{u}"),
                "soak",
            ))
        })
        .collect();
    h.settle();

    // The scheduled CI soak job turns this up (e.g. 20_000); the default
    // keeps the gating test suite fast.
    let steps: u64 =
        std::env::var("COSOFT_SOAK_STEPS").ok().and_then(|s| s.parse().ok()).unwrap_or(1_000);
    for step in 0..steps {
        if alive.len() < 2 {
            break;
        }
        let a = alive[rng.gen_range(0..alive.len())];
        let b = alive[rng.gen_range(0..alive.len())];
        let p = PATHS[rng.gen_range(0..PATHS.len())];
        match rng.gen_range(0..100) {
            0..=24 => {
                // User event (coupled or not; may be refused while locked).
                let ev = random_event(&mut rng, p);
                let _ = h.session_mut(a).user_event(ev);
            }
            25..=39 => {
                if a != b {
                    let dst = h.session(b).gid(&path(p)).expect("registered");
                    h.session_mut(a).couple(&path(p), dst).expect("registered");
                }
            }
            40..=49 => {
                if a != b {
                    let dst = h.session(b).gid(&path(p)).expect("registered");
                    h.session_mut(a).decouple(&path(p), dst).expect("registered");
                }
            }
            50..=62 => {
                if a != b {
                    let mode = match rng.gen_range(0..3) {
                        0 => CopyMode::Strict,
                        1 => CopyMode::DestructiveMerge,
                        _ => CopyMode::FlexibleMatch,
                    };
                    let dst = h.session(b).gid(&path(p)).expect("registered");
                    let _ = h.session_mut(a).copy_to(&path(p), dst, mode);
                }
            }
            63..=69 => {
                if a != b {
                    let src = h.session(b).gid(&path(p)).expect("registered");
                    let _ = h.session_mut(a).copy_from(src, &path(p), CopyMode::FlexibleMatch);
                }
            }
            70..=75 => {
                let obj = h.session(a).gid(&path(p)).expect("registered");
                if rng.gen() {
                    h.session_mut(a).undo(obj);
                } else {
                    h.session_mut(a).redo(obj);
                }
            }
            76..=80 => {
                let right = match rng.gen_range(0..3) {
                    0 => AccessRight::Denied,
                    1 => AccessRight::Read,
                    _ => AccessRight::Write,
                };
                let user = UserId(rng.gen_range(1..7));
                let _ = h.session_mut(a).set_permission(user, &path(p), right);
            }
            81..=87 => {
                let target = match rng.gen_range(0..3) {
                    0 => Target::Broadcast,
                    1 => Target::Group(h.session(a).gid(&path(p)).expect("registered")),
                    _ => {
                        let other = alive[rng.gen_range(0..alive.len())];
                        match h.instance_of(other) {
                            Some(i) => Target::Instance(i),
                            None => Target::Broadcast,
                        }
                    }
                };
                h.session_mut(a).send_command(target, "soak-cmd", vec![step as u8]);
            }
            88..=91 => {
                // Destroy a subtree (panel or canvas), auto-decoupling it.
                // It may already be gone — both outcomes are legal.
                let victim = if rng.gen() { "f.sub" } else { "f.c" };
                let _ = h.session_mut(a).destroy(&path(victim));
            }
            92..=94 => {
                if alive.len() > 2 {
                    // Crash an instance entirely.
                    h.crash(a);
                    alive.retain(|&n| n != a);
                }
            }
            _ => {
                h.session_mut(a).query_instances();
            }
        }
        // Settle every few steps to interleave in-flight traffic.
        if step % 3 == 0 {
            h.settle();
        }
    }
    h.settle();

    // Invariants at quiescence.
    assert!(h.server.locks().is_empty(), "locks must drain after soak");
    for &node in &alive {
        // Drain event queues (no panics while formatting them).
        let _ = h.session_mut(node).take_events();
        // Every surviving widget is interactable again.
        let tree = h.session(node).toolkit().tree();
        if let Some(root) = tree.root() {
            for id in tree.walk(root) {
                let w = tree.widget(id).expect("live");
                assert!(
                    !w.is_lock_disabled(),
                    "widget {:?} left lock-disabled on {node}",
                    tree.path_of(id)
                );
            }
        }
        // Replicated coupling info is symmetric among survivors.
        for p in PATHS {
            if let Some(group) = h.session(node).group_of(&path(p)) {
                let me = h.instance_of(node).expect("alive");
                assert!(group.iter().any(|g| g.instance == me), "own object missing from group");
            }
        }
    }
}
