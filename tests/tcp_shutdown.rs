//! Deterministic-shutdown regressions: session close used to sleep an
//! arbitrary 20 ms hoping the goodbye frames had left, and server drop
//! waited out a 50 ms dispatch poll. Both are handshakes now — close
//! waits on the client writer's flush signal, drop wakes the dispatch
//! loop — so these tests assert outcomes, not timing luck.

use std::time::{Duration, Instant};

use cosoft::core::session::Session;
use cosoft::net::TcpHostConfig;
use cosoft::runtime::{TcpServer, TcpSession};
use cosoft::server::LivenessConfig;
use cosoft::uikit::{spec, Toolkit};
use cosoft::wire::UserId;

const FORM: &str = r#"form pad { textfield line text="" }"#;
const TIMEOUT: Duration = Duration::from_secs(10);

fn make_session(user: u64) -> Session {
    Session::new(
        Toolkit::from_tree(spec::build_tree(FORM).expect("static spec")),
        UserId(user),
        &format!("host{user}"),
        "tcp-shutdown",
    )
}

fn wait_for(server: &TcpServer, what: &str, ok: impl Fn(&TcpServer) -> bool) {
    let deadline = Instant::now() + TIMEOUT;
    while !ok(server) {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The goodbye actually flushes: with a long quarantine grace, a client
/// that merely *vanishes* gets quarantined, while one whose `Deregister`
/// reached the server is deregistered outright. `close()` must always
/// land in the second bucket — that is what the flush handshake (writer
/// signals `close` when the frames hit the socket) guarantees, where the
/// old fixed 20 ms nap merely gambled on it.
#[test]
fn session_close_deregisters_instead_of_quarantining() {
    let liveness = LivenessConfig { grace_us: 30_000_000, ..LivenessConfig::default() };
    let server = TcpServer::spawn_with_liveness("127.0.0.1:0", TcpHostConfig::default(), liveness)
        .expect("bind");
    let session = TcpSession::connect(server.addr(), make_session(1)).expect("connect");
    wait_for(&server, "registration", |s| s.server_stats().registered_instances == 1);

    let t0 = Instant::now();
    session.close();
    let close_elapsed = t0.elapsed();

    wait_for(&server, "deregistration", |s| s.server_stats().registered_instances == 0);
    let stats = server.server_stats();
    assert_eq!(
        stats.quarantined_instances, 0,
        "close() lost the Deregister and the server had to quarantine the instance"
    );
    // Bounded even so: the handshake waits for the flush signal, not a
    // wedged socket.
    assert!(close_elapsed < Duration::from_secs(2), "close took {close_elapsed:?}");
}

/// Dropping the server must not wait out the dispatch tick (1 s when
/// liveness is off): `Drop` wakes the loop with a dummy connection.
#[test]
fn server_drop_joins_promptly() {
    let server = TcpServer::spawn("127.0.0.1:0").expect("bind");
    // An idle connected client, so the drop also exercises live-socket
    // teardown, not just an empty host.
    let session = TcpSession::connect(server.addr(), make_session(2)).expect("connect");
    wait_for(&server, "registration", |s| s.server_stats().registered_instances == 1);

    let t0 = Instant::now();
    drop(server);
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_millis(700),
        "server drop waited out the dispatch tick instead of being woken: {elapsed:?}"
    );
    drop(session);
}
