//! Cross-application coupling: instances of *different programs*
//! (classroom vs TORI) share UI objects — the paper's definition of
//! heterogeneity goes beyond differently-structured forms of one app.

use std::sync::Arc;

use cosoft::apps::{classroom, tori};
use cosoft::core::harness::SimHarness;
use cosoft::retrieval::sample_literature_db;
use cosoft::wire::{AttrName, EventKind, ObjectPath, UiEvent, UserId, Value};

fn path(p: &str) -> ObjectPath {
    ObjectPath::parse(p).expect("valid")
}

#[test]
fn classroom_discussion_drives_tori_query() {
    // The teacher's discussion line is coupled to a librarian's TORI
    // author field: whatever the class discusses becomes the search term.
    let mut h = SimHarness::new(77);
    let teacher = h.add_session(classroom::teacher_session(UserId(1)));
    let librarian =
        h.add_session(tori::tori_session(UserId(2), Arc::new(sample_literature_db(7, 300))));
    h.settle();

    let query_field =
        h.session(librarian).gid(&path("tori.attr_author.value")).expect("registered");
    h.session_mut(teacher).couple(&path("board.discussion"), query_field).expect("registered");
    h.settle();

    // The teacher types an author name into the discussion field.
    h.session_mut(teacher)
        .user_event(UiEvent::new(
            path("board.discussion"),
            EventKind::TextCommitted,
            vec![Value::Text("Stefik".into())],
        ))
        .expect("valid event");
    h.settle();

    // The librarian's query field follows (both are text fields — same
    // kind, different applications), and invoking the query works.
    let tree = h.session(librarian).toolkit().tree();
    let id = tree.resolve(&path("tori.attr_author.value")).expect("widget");
    assert_eq!(tree.attr(id, &AttrName::Text).expect("attr"), &Value::Text("Stefik".into()));

    h.session_mut(librarian).user_event(tori::events::invoke()).expect("valid event");
    h.settle();
    let rows = tori::result_rows(h.session(librarian));
    assert!(!rows.is_empty());
    assert!(rows.iter().all(|r| r.starts_with("Stefik")), "{rows:?}");
}

#[test]
fn tori_status_mirrors_onto_classroom_board_label() {
    // Reverse direction and cross-kind: the TORI status label (Label)
    // couples onto the classroom topic label. Labels emit no events, so
    // synchronization flows by state copy — the communication-oriented
    // periodic mode.
    let mut h = SimHarness::new(78);
    let teacher = h.add_session(classroom::teacher_session(UserId(1)));
    let librarian =
        h.add_session(tori::tori_session(UserId(2), Arc::new(sample_literature_db(7, 300))));
    h.settle();

    h.session_mut(librarian).user_event(tori::events::invoke()).expect("valid event");
    h.settle();

    // Push the status over to the board.
    let topic = h.session(teacher).gid(&path("board.topic")).expect("registered");
    h.session_mut(librarian)
        .copy_to(&path("tori.status"), topic, cosoft::wire::CopyMode::Strict)
        .expect("registered");
    h.settle();

    let tree = h.session(teacher).toolkit().tree();
    let id = tree.resolve(&path("board.topic")).expect("widget");
    let text = tree.attr(id, &AttrName::Text).expect("attr").to_string();
    assert!(text.contains("rows"), "board shows the query status: {text}");
}

#[test]
fn sketch_board_couples_with_classroom_canvas_free_instance() {
    // Two different apps can even share a canvas: the sketch pad and a
    // second sketch instance embedded in another harness-registered app
    // (here: another pad with a different host/app name suffices to show
    // app identity does not matter to the protocol).
    let mut h = SimHarness::new(79);
    let pad = h.add_session(cosoft::apps::sketch::sketch_session(UserId(1), "alpha"));
    let other = h.add_session(cosoft::apps::sketch::sketch_session(UserId(2), "beta"));
    h.settle();

    let remote = h.session(other).gid(&cosoft::apps::sketch::board_path()).expect("registered");
    h.session_mut(pad).couple(&cosoft::apps::sketch::board_path(), remote).expect("registered");
    h.settle();
    h.session_mut(pad)
        .user_event(cosoft::apps::sketch::draw_event(vec![(1, 1), (2, 2)]))
        .expect("valid event");
    h.settle();
    assert_eq!(cosoft::apps::sketch::strokes(h.session(other)).len(), 1);
}
