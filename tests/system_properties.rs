//! System-level property tests: random couple/decouple/event/copy
//! schedules over the simulated network must preserve the paper's core
//! invariants — coupled relevant state converges, locks drain, the couple
//! relation stays symmetric, decoupled objects survive.

use proptest::prelude::*;

use cosoft::core::harness::SimHarness;
use cosoft::core::session::Session;
use cosoft::net::sim::NodeId;
use cosoft::uikit::{spec, Toolkit};
use cosoft::wire::{AttrName, CopyMode, EventKind, ObjectPath, UiEvent, UserId, Value};

const FORM: &str = r#"form f { textfield t text="" }"#;

fn path() -> ObjectPath {
    ObjectPath::parse("f.t").expect("static")
}

fn session(user: u64) -> Session {
    Session::new(
        Toolkit::from_tree(spec::build_tree(FORM).expect("static spec")),
        UserId(user),
        &format!("h{user}"),
        "prop",
    )
}

fn text_of(h: &SimHarness, node: NodeId) -> String {
    let tree = h.session(node).toolkit().tree();
    let id = tree.resolve(&path()).expect("widget");
    tree.attr(id, &AttrName::Text).expect("attr").as_text().expect("text").to_owned()
}

/// One scripted step of the random schedule.
#[derive(Debug, Clone)]
enum Step {
    Couple(usize, usize),
    Decouple(usize, usize),
    Type(usize, String),
    CopyTo(usize, usize),
}

fn arb_step(users: usize) -> impl Strategy<Value = Step> {
    let u = 0..users;
    prop_oneof![
        (u.clone(), 0..users).prop_map(|(a, b)| Step::Couple(a, b)),
        (u.clone(), 0..users).prop_map(|(a, b)| Step::Decouple(a, b)),
        (u.clone(), "[a-z]{1,6}").prop_map(|(a, s)| Step::Type(a, s)),
        (u, 0..users).prop_map(|(a, b)| Step::CopyTo(a, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_schedules_preserve_invariants(
        seed in 0u64..1_000,
        steps in prop::collection::vec(arb_step(4), 1..25),
    ) {
        let mut h = SimHarness::new(seed);
        let nodes: Vec<NodeId> = (0..4).map(|u| h.add_session(session(u as u64 + 1))).collect();
        h.settle();

        for step in &steps {
            match step {
                Step::Couple(a, b) if a != b => {
                    // The paper's join procedure: initial synchronization
                    // by UI state, then the couple link (§3.1: coupling
                    // alone does not copy pre-existing state).
                    let dst = h.session(nodes[*b]).gid(&path()).expect("registered");
                    h.session_mut(nodes[*a])
                        .copy_to(&path(), dst.clone(), CopyMode::Strict)
                        .expect("registered");
                    h.settle();
                    h.session_mut(nodes[*a]).couple(&path(), dst).expect("registered");
                }
                Step::Decouple(a, b) if a != b => {
                    let dst = h.session(nodes[*b]).gid(&path()).expect("registered");
                    h.session_mut(nodes[*a]).decouple(&path(), dst).expect("registered");
                }
                Step::Type(a, text) => {
                    // May legally fail if the widget is locked mid-round;
                    // settle() below guarantees it never stays locked.
                    let _ = h.session_mut(nodes[*a]).user_event(UiEvent::new(
                        path(),
                        EventKind::TextCommitted,
                        vec![Value::Text(text.clone())],
                    ));
                }
                Step::CopyTo(a, b) if a != b => {
                    let dst = h.session(nodes[*b]).gid(&path()).expect("registered");
                    h.session_mut(nodes[*a])
                        .copy_to(&path(), dst, CopyMode::Strict)
                        .expect("registered");
                }
                _ => {}
            }
            h.settle();
        }

        // Invariant 1: the lock table drains at quiescence.
        prop_assert!(h.server.locks().is_empty(), "locks must drain");

        // Invariant 2: the replicated coupling info is symmetric and all
        // members of one group agree on it, and coupled objects hold
        // identical relevant state.
        for (i, &node) in nodes.iter().enumerate() {
            if let Some(group) = h.session(node).group_of(&path()) {
                let text = text_of(&h, node);
                for member in group {
                    let peer_idx = (member.instance.0 - 1) as usize;
                    prop_assert!(peer_idx < nodes.len());
                    if peer_idx == i {
                        continue;
                    }
                    let peer = nodes[peer_idx];
                    // Symmetry of the replicated closure.
                    let peer_group = h.session(peer).group_of(&path());
                    prop_assert!(peer_group.is_some(), "peer lost its coupling info");
                    prop_assert_eq!(peer_group.unwrap(), group, "closures disagree");
                    // Convergence of the relevant attribute.
                    prop_assert_eq!(&text_of(&h, peer), &text, "coupled state diverged");
                }
            }
        }

        // Invariant 3: every widget is interactable again (no stuck
        // floor-control disables).
        for &node in &nodes {
            let tree = h.session(node).toolkit().tree();
            let id = tree.resolve(&path()).expect("widget survives");
            prop_assert!(tree.widget(id).expect("widget").is_interactable());
        }
    }

    #[test]
    fn event_storms_converge_on_chain_groups(
        seed in 0u64..1_000,
        texts in prop::collection::vec(("[a-z]{1,8}", 0usize..4), 1..30),
    ) {
        let mut h = SimHarness::with_latency(seed, 700);
        let nodes: Vec<NodeId> = (0..4).map(|u| h.add_session(session(u as u64 + 1))).collect();
        h.settle();
        for w in nodes.windows(2) {
            let dst = h.session(w[1]).gid(&path()).expect("registered");
            h.session_mut(w[0]).couple(&path(), dst).expect("registered");
            h.settle();
        }

        // Everyone types concurrently (some events get rejected — fine);
        // after quiescence all four replicas must agree.
        for (text, user) in &texts {
            let _ = h.session_mut(nodes[*user]).user_event(UiEvent::new(
                path(),
                EventKind::TextCommitted,
                vec![Value::Text(text.clone())],
            ));
        }
        h.settle();
        let reference = text_of(&h, nodes[0]);
        for &n in &nodes[1..] {
            prop_assert_eq!(&text_of(&h, n), &reference, "replicas diverged after storm");
        }
        prop_assert!(h.server.locks().is_empty());
    }
}
