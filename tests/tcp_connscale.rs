//! Connection-scale gate for the readiness-driven TCP host: ≥1k
//! concurrent connections — register, couple into groups, one fan-out
//! round, teardown — served by a fixed 2-thread poll pool.
//!
//! Clients are raw `std::net::TcpStream`s speaking the wire protocol
//! directly (no `TcpClient`, which would add 2 OS threads per client and
//! turn the test into a thread-scale test of the *clients*). The host
//! side is the full runtime stack (`TcpServer` → `ShardRouter` →
//! `ServerCore`). The fd budget is ~2 per connection; the test checks
//! `ulimit -n` up front and fails with a pointer at the limit rather
//! than drowning in `EMFILE`.

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use cosoft::net::TcpHostConfig;
use cosoft::runtime::TcpServer;
use cosoft::wire::{codec, GlobalObjectId, InstanceId, Message, ObjectPath, Target, UserId};

/// Concurrent connections the gate drives (the acceptance floor is 1k).
const CONNS: usize = 1024;

/// Members per couple group.
const GROUP_SIZE: usize = 4;

const TIMEOUT: Duration = Duration::from_secs(20);

/// Polls until `ok()` holds — the runtime publishes stats
/// asynchronously (periodic tick + on-change), so instant assertions
/// on them would race the publisher.
fn wait_for(what: &str, ok: impl Fn() -> bool) {
    let deadline = Instant::now() + TIMEOUT;
    while !ok() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Soft `RLIMIT_NOFILE`, from /proc (the test has no libc access).
fn max_open_files() -> Option<usize> {
    let limits = std::fs::read_to_string("/proc/self/limits").ok()?;
    let line = limits.lines().find(|l| l.starts_with("Max open files"))?;
    line.split_whitespace().nth(3)?.parse().ok()
}

/// Connects with a few retries: a 1k burst can transiently overrun the
/// listener backlog on slow machines.
fn connect_retrying(addr: std::net::SocketAddr) -> TcpStream {
    let mut last_err = None;
    for _ in 0..50 {
        match TcpStream::connect(addr) {
            Ok(s) => return s,
            Err(e) => {
                last_err = Some(e);
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
    panic!("could not connect to host: {last_err:?}");
}

/// Reads frames until one matches `pick`, skimming everything else
/// (`SessionToken`, `CoupleUpdate` chatter, ...).
fn read_until<T>(
    reader: &mut BufReader<TcpStream>,
    what: &str,
    pick: impl Fn(Message) -> Option<T>,
) -> T {
    loop {
        match codec::read_frame(reader) {
            Ok(Some(msg)) => {
                if let Some(v) = pick(msg) {
                    return v;
                }
            }
            Ok(None) => panic!("connection closed while waiting for {what}"),
            Err(e) => panic!("read failed while waiting for {what}: {e}"),
        }
    }
}

#[test]
fn one_thousand_connections_register_couple_fanout_teardown() {
    if let Some(limit) = max_open_files() {
        let needed = CONNS * 2 + 512;
        assert!(
            limit >= needed,
            "this gate needs ~{needed} fds for {CONNS} connections but `ulimit -n` is {limit}; \
             raise it (CI does `ulimit -n 16384`)"
        );
    }

    // Generous queues and a 2-thread pool: the point is connection
    // *count* on fixed threads, not slow-consumer policy.
    let config = TcpHostConfig {
        queue_capacity: 4096,
        queue_max_bytes: 64 * 1024 * 1024,
        enqueue_timeout: Duration::from_secs(10),
        io_threads: 2,
        ..TcpHostConfig::default()
    };
    let server = TcpServer::spawn_with_config("127.0.0.1:0", config).expect("bind");
    let addr = server.addr();

    // Phase 1: connect + pipeline every Register before reading any
    // reply, then collect the Welcomes.
    let mut clients: Vec<BufReader<TcpStream>> = Vec::with_capacity(CONNS);
    for i in 0..CONNS {
        let stream = connect_retrying(addr);
        stream.set_read_timeout(Some(TIMEOUT)).unwrap();
        stream.set_nodelay(true).ok();
        let frame = codec::frame_message(&Message::Register {
            user: UserId(i as u64 + 1),
            host: format!("scale-{i}"),
            app_name: "connscale".into(),
        });
        (&stream).write_all(&frame).expect("write Register");
        clients.push(BufReader::new(stream));
    }
    let mut instances: Vec<InstanceId> = Vec::with_capacity(CONNS);
    for reader in &mut clients {
        instances.push(read_until(reader, "Welcome", |m| match m {
            Message::Welcome { instance } => Some(instance),
            _ => None,
        }));
    }
    wait_for("all connections active", || server.net_stats().active_connections == CONNS);
    wait_for("all instances registered", || server.server_stats().registered_instances == CONNS);

    // Phase 2: chain-couple groups of GROUP_SIZE neighbours (same shape
    // as the shard bench population: the transitive closure makes each
    // chain one component). Every couple for a group is written from the
    // *group leader's* connection — the same one that later sends the
    // fan-out — because the server only orders frames within one
    // connection; couples written by other members could race the send.
    let path = ObjectPath::parse("obj").expect("static path parses");
    let gid = |inst: InstanceId| GlobalObjectId::new(inst, path.clone());
    for group_start in (0..CONNS).step_by(GROUP_SIZE) {
        for m in group_start..group_start + GROUP_SIZE - 1 {
            let frame = codec::frame_message(&Message::Couple {
                src: gid(instances[m]),
                dst: gid(instances[m + 1]),
            });
            clients[group_start].get_ref().write_all(&frame).expect("write Couple");
        }
    }

    // Phase 3: one fan-out round — group member 0 CoSends to the group,
    // every other member must receive exactly that CommandDelivery.
    for group_start in (0..CONNS).step_by(GROUP_SIZE) {
        let frame = codec::frame_message(&Message::CoSendCommand {
            to: Target::Group(gid(instances[group_start])),
            command: "connscale-round".into(),
            payload: vec![0xC5; 32],
        });
        clients[group_start].get_ref().write_all(&frame).expect("write CoSendCommand");
    }
    let mut delivered = 0usize;
    for group_start in (0..CONNS).step_by(GROUP_SIZE) {
        for follower in clients[group_start + 1..group_start + GROUP_SIZE].iter_mut() {
            let (from, command) = read_until(follower, "CommandDelivery", |m| match m {
                Message::CommandDelivery { from, command, .. } => Some((from, command)),
                _ => None,
            });
            assert_eq!(from, instances[group_start], "delivery from the wrong sender");
            assert_eq!(command, "connscale-round");
            delivered += 1;
        }
    }
    assert_eq!(delivered, CONNS / GROUP_SIZE * (GROUP_SIZE - 1));
    wait_for("all connections still active", || server.net_stats().active_connections == CONNS);
    assert_eq!(server.net_stats().slow_consumer_evictions, 0, "healthy readers were evicted");

    // Phase 4: teardown. Dropping every socket must drain to zero
    // connections and zero registered instances (grace 0 ⇒ disconnect
    // deregisters immediately).
    drop(clients);
    let deadline = Instant::now() + TIMEOUT;
    loop {
        let active = server.net_stats().active_connections;
        let registered = server.server_stats().registered_instances;
        if active == 0 && registered == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "teardown incomplete: {active} connections / {registered} instances still live"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}
